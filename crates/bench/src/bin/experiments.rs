//! Regenerates the experiment tables, the machine-readable scenario
//! report, and the service load-harness report (see DESIGN.md §3/§6/§7).
//!
//! Usage:
//! ```text
//! experiments [--quick] [--huge] [--out PATH] [--label NAME] [--list]
//!             [--threads N] [--workers N] [--requests N]
//!             [--shards N] [--port P] [--connect ADDR]
//!             [--ooc-dir DIR] [--check PATH] [id ...]
//! ```
//!
//! * ids: any table id (`t1` … `t14`, `t13p`, `t13c`, `f1`, `f2`),
//!   `tables` (all of them), `scenarios` (the registry grid), `serve`
//!   (the service load mixes), `columnar` (the AoS-vs-SoA scan
//!   comparison block), `net-serve` (the socket loadgen against a real
//!   loopback `llp_serve` server), `ooc` (the file-backed out-of-core
//!   harness), or `all` (everything; the default).
//! * `--quick` shrinks every input size through one shared [`RunBudget`]
//!   (the same budget the integration tests use).
//! * `--huge` selects the out-of-core budget tier (`n ≥ 10^8`): only the
//!   `ooc` harness accepts it, streaming-only, with the instance spilled
//!   to a chunked store file and never materialized in RAM. Conflicts
//!   with `--quick` and with every other experiment id.
//! * `--ooc-dir DIR` places the chunked store files the `ooc` harness
//!   writes (default `llp_ooc_chunks/`).
//! * `--threads N` pins the `llp_par` scan-thread count via
//!   `llp_par::set_threads` — it overrides the `LLP_THREADS` environment
//!   variable for this run (precedence: `--threads` > `LLP_THREADS` >
//!   `available_parallelism`; see README "Parallelism").
//! * `--workers N` / `--requests N` tune the `serve` and `net-serve`
//!   harnesses (service worker threads, requests per wave per mix).
//! * `--shards N` sets the shard count behind the `net-serve` server
//!   (precedence: `--shards` > `LLP_SHARDS` > max(2, cores); see README
//!   "Network serving"); `--port P` pins the loopback port (default:
//!   ephemeral); `--connect ADDR` drives an already-running external
//!   server instead of booting one in-process.
//! * When the scenario grid or the serve harness runs, the report is
//!   written as JSON to `--out PATH`, or to `BENCH_<label>.json` with
//!   the label defaulting to the unix timestamp — the file the repo's
//!   perf trajectory tracks. Passing `--out` or `--label` runs the grid
//!   even when the ids alone would not (so the requested file always
//!   exists).
//! * `--check PATH` parses a previously written report back into
//!   [`llp_bench::report::Report`] and validates it (grid coverage, zero
//!   violations, cross-model objective agreement, service-counter
//!   conservation, the net block's per-shard *and* fleet-aggregate
//!   conservation laws, and the ooc block's byte meters — including
//!   re-opening and re-checksumming every store file the ooc block
//!   references, so a corrupted chunk store fails the gate); exits
//!   non-zero on any failure. No experiments run in this mode.
//! * `--list` prints the registry without running anything.

#![forbid(unsafe_code)]

use llp_bench::netserve::{self, NetServeOptions};
use llp_bench::report::{self, Report};
use llp_bench::serve::{self, ServeOptions};
use llp_bench::RunBudget;
use llp_workloads::scenario::registry;

fn main() {
    let mut quick = false;
    let mut huge = false;
    let mut out: Option<String> = None;
    let mut label: Option<String> = None;
    let mut check: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut requests: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut port: Option<u16> = None;
    let mut connect: Option<String> = None;
    let mut ooc_dir = "llp_ooc_chunks".to_string();
    let mut list = false;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--huge" => huge = true,
            "--out" => out = Some(expect_value(&mut args, "--out")),
            "--label" => label = Some(expect_value(&mut args, "--label")),
            "--check" => check = Some(expect_value(&mut args, "--check")),
            "--threads" => threads = Some(expect_usize(&mut args, "--threads")),
            "--workers" => workers = Some(expect_usize(&mut args, "--workers")),
            "--requests" => requests = Some(expect_usize(&mut args, "--requests")),
            "--shards" => shards = Some(expect_usize(&mut args, "--shards")),
            "--port" => port = Some(expect_port(&mut args, "--port")),
            "--connect" => connect = Some(expect_value(&mut args, "--connect")),
            "--ooc-dir" => ooc_dir = expect_value(&mut args, "--ooc-dir"),
            "--list" => list = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--quick] [--huge] [--out PATH] [--label NAME] [--list] \
                     [--threads N] [--workers N] [--requests N] [--shards N] [--port P] \
                     [--connect ADDR] [--ooc-dir DIR] [--check PATH] [id ...]"
                );
                eprintln!(
                    "ids: {:?}, 'tables', 'scenarios', 'serve', 'columnar', 'net-serve', 'ooc', \
                     or 'all' (default)",
                    llp_bench::ALL
                );
                return;
            }
            id => ids.push(id.to_string()),
        }
    }
    if huge && quick {
        eprintln!("error: --huge and --quick are mutually exclusive");
        std::process::exit(2);
    }
    if huge && ids.iter().any(|id| id != "ooc") {
        eprintln!("error: --huge only applies to the 'ooc' experiment");
        std::process::exit(2);
    }
    if huge && ids.is_empty() {
        ids.push("ooc".into());
    }
    let budget = if huge {
        RunBudget::Huge
    } else {
        RunBudget::from_quick_flag(quick)
    };
    if let Some(n) = threads {
        // Install the scan-thread override for this (main) thread; the
        // service worker pool manages its own per-worker override via
        // `ServiceConfig::solver_threads`.
        llp_par::set_threads(Some(n));
    }

    if let Some(path) = check {
        check_report(&path);
        return;
    }
    if list {
        println!(
            "{:<22} {:<24} {:>9} {:>3} {:>6} {:>2} {:>6}",
            "scenario", "family", "n", "d", "seed", "r", "skew"
        );
        for sc in registry(budget) {
            println!(
                "{:<22} {:<24} {:>9} {:>3} {:>6} {:>2} {:>6}",
                sc.name,
                sc.family.name(),
                sc.n,
                sc.d,
                sc.seed,
                sc.r,
                sc.skew.map_or("-".to_string(), |s| format!("{s}")),
            );
        }
        return;
    }

    if ids.is_empty() {
        ids.push("all".into());
    }
    let mut run_scenarios = false;
    let mut run_serve = false;
    let mut run_columnar = false;
    let mut run_net = false;
    let mut run_ooc = false;
    for id in &ids {
        match id.as_str() {
            "scenarios" => run_scenarios = true,
            "serve" => run_serve = true,
            "columnar" => run_columnar = true,
            "net-serve" => run_net = true,
            "ooc" => run_ooc = true,
            "all" | "tables" => {
                if id == "all" {
                    run_scenarios = true;
                    run_serve = true;
                    run_columnar = true;
                    run_net = true;
                    run_ooc = true;
                }
                for table_id in llp_bench::ALL {
                    for table in llp_bench::run(table_id, budget) {
                        println!("{}", table.render());
                    }
                }
            }
            id => {
                for table in llp_bench::run(id, budget) {
                    println!("{}", table.render());
                }
            }
        }
    }
    // Flags that only make sense for a specific run force that run:
    // silently discarding them while naming ids that skip it would write
    // nothing (and a later --check would read a stale file).
    if (workers.is_some() || requests.is_some()) && !run_net {
        run_serve = true;
    }
    if shards.is_some() || port.is_some() || connect.is_some() {
        run_net = true;
    }
    if (out.is_some() || label.is_some())
        && !run_scenarios
        && !run_serve
        && !run_columnar
        && !run_net
        && !run_ooc
    {
        run_scenarios = true;
    }

    if run_scenarios || run_serve || run_columnar || run_net || run_ooc {
        let label = label.unwrap_or_else(unix_timestamp);
        let mut report = if run_scenarios {
            report::run_scenarios(budget, &label)
        } else {
            Report {
                schema_version: report::SCHEMA_VERSION,
                label: label.clone(),
                budget: budget.name().to_string(),
                cells: Vec::new(),
                service: Vec::new(),
                columnar: Vec::new(),
                net: Vec::new(),
                ooc: Vec::new(),
            }
        };
        if run_scenarios {
            println!("{}", report.summary_table().render());
        }
        if run_serve {
            let mut opts = ServeOptions::for_budget(budget);
            if let Some(w) = workers {
                opts.workers = w.max(1);
            }
            if let Some(r) = requests {
                opts.requests = r.max(1);
            }
            report.service = serve::run_mixes(budget, &opts);
            println!("{}", report.service_summary_table().render());
        }
        if run_columnar {
            report.columnar = report::run_columnar(budget);
            println!("{}", report.columnar_summary_table().render());
        }
        if run_net {
            let mut opts = NetServeOptions::for_budget(budget, llp_serve::default_shards(shards));
            if let Some(w) = workers {
                opts.serve.workers = w.max(1);
            }
            if let Some(r) = requests {
                opts.serve.requests = r.max(1);
            }
            if let Some(p) = port {
                opts.port = p;
            }
            opts.connect = connect.clone();
            report.net = netserve::run_net_mixes(budget, &opts);
            println!("{}", report.net_summary_table().render());
        }
        if run_ooc {
            report.ooc = llp_bench::ooc::run_ooc(budget, std::path::Path::new(&ooc_dir));
            println!("{}", report.ooc_summary_table().render());
        }
        let path = out.unwrap_or_else(|| format!("BENCH_{label}.json"));
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        if let Err(e) = report::validate(&report) {
            eprintln!("error: freshly generated report is invalid: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "wrote {path} ({} grid cells, {} scenarios, {} service mixes, {} columnar cells, \
             {} net rows, {} ooc cells, budget {})",
            report.cells.len(),
            report.cells.len() / report::MODELS.len(),
            report.service.len(),
            report.columnar.len(),
            report.net.len(),
            report.ooc.len(),
            report.budget
        );
    }
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn expect_usize(args: &mut impl Iterator<Item = String>, flag: &str) -> usize {
    let raw = expect_value(args, flag);
    raw.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            eprintln!("error: {flag} needs a positive integer, got {raw:?}");
            std::process::exit(2);
        })
}

fn expect_port(args: &mut impl Iterator<Item = String>, flag: &str) -> u16 {
    let raw = expect_value(args, flag);
    raw.parse::<u16>().unwrap_or_else(|_| {
        eprintln!("error: {flag} needs a port number, got {raw:?}");
        std::process::exit(2);
    })
}

fn unix_timestamp() -> String {
    // llp-analyzer: allow(wall-clock) -- default report label timestamp only; --label pins it for reproducible runs
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs().to_string())
        .unwrap_or_else(|_| "epoch".to_string())
}

fn check_report(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let report = Report::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path} does not parse as a Report: {e}");
        std::process::exit(1);
    });
    if let Err(e) = report::validate(&report) {
        eprintln!("error: {path} is invalid: {e}");
        std::process::exit(1);
    }
    // The ooc block names store files on disk: re-open and re-checksum
    // every one, so a corrupted chunk store fails the gate.
    if let Err(e) = report::verify_ooc_files(&report) {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "{path}: ok — schema v{}, {} grid cells, {} scenarios, {} service mixes, \
         {} columnar cells, {} net rows, {} ooc cells, budget {}",
        report.schema_version,
        report.cells.len(),
        report.cells.len() / report::MODELS.len(),
        report.service.len(),
        report.columnar.len(),
        report.net.len(),
        report.ooc.len(),
        report.budget
    );
}
