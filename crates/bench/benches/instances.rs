//! SVM and MEB end-to-end benches (experiments T6/T7's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llp_bigdata::streaming::{self as stream_impl, SamplingMode};
use llp_core::clarkson::ClarksonConfig;
use llp_core::instances::meb::MebProblem;
use llp_core::instances::svm::SvmProblem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_svm_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("t6_svm_streaming");
    group.sample_size(10);
    for d in [2usize, 3] {
        let (pts, _) = llp_workloads::separable_clouds(50_000, d, 0.5, 1);
        let p = SvmProblem::new(d);
        group.bench_function(BenchmarkId::new("d", d), |b| {
            b.iter(|| {
                let mut rr = StdRng::seed_from_u64(2);
                black_box(
                    stream_impl::solve(
                        &p,
                        &pts,
                        &ClarksonConfig::calibrated(2),
                        SamplingMode::TwoPassIid,
                        &mut rr,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_meb_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("t7_meb_streaming");
    group.sample_size(10);
    for d in [2usize, 3] {
        let pts = llp_workloads::sphere_shell(50_000, d, 3.0, 3);
        let p = MebProblem::new(d);
        group.bench_function(BenchmarkId::new("d", d), |b| {
            b.iter(|| {
                let mut rr = StdRng::seed_from_u64(4);
                black_box(
                    stream_impl::solve(
                        &p,
                        &pts,
                        &ClarksonConfig::calibrated(2),
                        SamplingMode::OnePassSpeculative,
                        &mut rr,
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svm_streaming, bench_meb_streaming);
criterion_main!(benches);
