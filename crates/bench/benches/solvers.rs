//! Microbenchmarks of the basis solvers (the `T_b`/`T_v` primitives of
//! Propositions 4.1–4.3) and the parallel violation-scan hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llp_core::instances::svm::SvmPoint;
use llp_core::lptype::count_violations;
use llp_solver::lexico::lex_min_optimum;
use llp_solver::seidel::{self, SeidelConfig};
use llp_solver::svm_qp::{self, SvmConfig};
use llp_solver::welzl::min_enclosing_ball;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_seidel(c: &mut Criterion) {
    let mut group = c.benchmark_group("seidel_lp");
    group.sample_size(20);
    for d in [2usize, 4, 6] {
        for m in [1_000usize, 10_000] {
            let (p, cs) = llp_workloads::random_lp(m, d, 1);
            group.bench_with_input(
                BenchmarkId::new(format!("d{d}"), m),
                &(p, cs),
                |b, (p, cs)| {
                    b.iter(|| {
                        let mut r = StdRng::seed_from_u64(2);
                        black_box(seidel::solve(
                            cs,
                            &p.objective,
                            &SeidelConfig::default(),
                            &mut r,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_lexico(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexicographic_lp");
    group.sample_size(20);
    for d in [2usize, 4] {
        let (p, cs) = llp_workloads::random_lp(5_000, d, 3);
        group.bench_function(BenchmarkId::new("lex_min", d), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(4);
                black_box(lex_min_optimum(
                    &cs,
                    &p.objective,
                    &SeidelConfig::default(),
                    &mut r,
                ))
            })
        });
    }
    group.finish();
}

fn bench_welzl(c: &mut Criterion) {
    let mut group = c.benchmark_group("welzl_meb");
    group.sample_size(20);
    for d in [2usize, 3, 5] {
        let pts = llp_workloads::ball_cloud(20_000, d, 5.0, 5);
        group.bench_function(BenchmarkId::new("meb", d), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(6);
                black_box(min_enclosing_ball(&pts, &mut r))
            })
        });
    }
    group.finish();
}

fn bench_svm_qp(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_active_set");
    group.sample_size(20);
    for d in [2usize, 4] {
        let (pts, _) = llp_workloads::separable_clouds(10_000, d, 0.5, 7);
        let points: Vec<Vec<f64>> = pts.iter().map(|p: &SvmPoint| p.x.clone()).collect();
        let labels: Vec<i8> = pts.iter().map(|p| p.y).collect();
        group.bench_function(BenchmarkId::new("qp", d), |b| {
            b.iter(|| black_box(svm_qp::solve(&points, &labels, &SvmConfig::default())))
        });
    }
    group.finish();
}

/// The violation scan (`T_v` over the whole input) at 1 thread vs the
/// machine's parallelism — the hot path the t13 scaling experiment is
/// bound by. Outputs are bit-identical across counts (asserted here);
/// the timing difference is the `llp_par` payoff. Shares its instance
/// with the T13p experiment (`llp_bench::violation_scan_fixture`) so the
/// two measurement paths cannot drift apart.
fn bench_parallel_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel");
    group.sample_size(10);
    let (p, cs, sol) = llp_bench::violation_scan_fixture(1_000_000);
    let threads_n = llp_par::threads().max(2);
    let reference = llp_par::with_threads(1, || count_violations(&p, &sol, &cs));
    for threads in [1usize, threads_n] {
        assert_eq!(
            llp_par::with_threads(threads, || count_violations(&p, &sol, &cs)),
            reference,
            "violation scan must be thread-count-independent"
        );
        group.bench_with_input(
            BenchmarkId::new("violation_scan_1e6", format!("threads{threads}")),
            &threads,
            |b, &threads| {
                llp_par::with_threads(threads, || {
                    b.iter(|| black_box(count_violations(&p, &sol, &cs)))
                })
            },
        );
    }
    group.finish();
}

/// The tentpole layout comparison: the AoS weighted violator scan
/// (`scan_violators_weighted`) vs its columnar (SoA) twin over
/// `ConstraintColumns` at n=1e6, at 1 thread and the machine's
/// parallelism. Outputs — violator index list and total weight — are
/// asserted bit-identical across layouts and thread counts before any
/// timing; the gap between the two series is the memory-bandwidth payoff
/// of the columnar layout. Shares its fixture and weight schedule with
/// the T13c experiment and the report's columnar block
/// (`llp_bench::violation_scan_fixture` /
/// `llp_bench::columnar_scan_weights`) so the measurement paths cannot
/// drift apart.
fn bench_columnar(c: &mut Criterion) {
    use llp_core::lptype::{
        scan_violators_weighted, scan_violators_weighted_columnar, ColumnarProblem,
    };
    let mut group = c.benchmark_group("columnar");
    group.sample_size(10);
    let (p, cs, sol) = llp_bench::violation_scan_fixture(1_000_000);
    let index = llp_bench::columnar_scan_weights(cs.len());
    // Paid once per solve and amortized over every iteration's scan, so
    // the transpose stays outside the timed region here too.
    let columns = p.to_columns(&cs);
    let mut out: Vec<usize> = Vec::new();
    let threads_n = llp_par::threads().max(2);
    let reference = llp_par::with_threads(1, || scan_violators_weighted(&p, &sol, &cs, &index));
    for threads in [1usize, threads_n] {
        llp_par::with_threads(threads, || {
            let aos = scan_violators_weighted(&p, &sol, &cs, &index);
            let w = scan_violators_weighted_columnar(&p, &sol, &columns, &index, &mut out);
            assert!(
                aos == reference && out == reference.0 && w == reference.1,
                "scan layouts must be bit-identical at any thread count"
            );
        });
        group.bench_with_input(
            BenchmarkId::new("aos_scan_1e6", format!("threads{threads}")),
            &threads,
            |b, &threads| {
                llp_par::with_threads(threads, || {
                    b.iter(|| black_box(scan_violators_weighted(&p, &sol, &cs, &index)))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("soa_scan_1e6", format!("threads{threads}")),
            &threads,
            |b, &threads| {
                llp_par::with_threads(threads, || {
                    b.iter(|| {
                        black_box(scan_violators_weighted_columnar(
                            &p, &sol, &columns, &index, &mut out,
                        ))
                    })
                })
            },
        );
    }
    group.finish();
}

/// The weight-bookkeeping hot path of Algorithm 1: the incremental
/// `WeightIndex` (O(|V| log n) updates + O(m log n) draws per iteration)
/// against the full O(n) prefix rebuild it replaced. Shares its violator
/// schedule with the T14 experiment (`llp_bench::weight_update_fixture`)
/// so the two measurement paths cannot drift apart; the final totals of
/// the two strategies are asserted to agree before timing starts.
fn bench_weight_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight_index");
    group.sample_size(10);
    let (iters, m) = (4usize, 512usize);
    for n in [100_000usize, 1_000_000] {
        let violators = (n / 200).max(1);
        let rounds = llp_bench::weight_update_fixture(n, iters, violators);
        let factor = (n as f64).sqrt();
        let mut index = llp_sampling::weight_index::WeightIndex::uniform(n);
        let mut exponent = vec![0u32; n];
        let (incr_total, _) =
            llp_bench::run_weight_index_incremental(&mut index, factor, m, &rounds);
        let (rebuild_total, _) =
            llp_bench::run_weight_prefix_rebuild(&mut exponent, factor, m, &rounds);
        assert!(
            (incr_total - rebuild_total).abs() <= 1e-6 * incr_total.abs().max(1.0),
            "weight paths disagree: {incr_total} vs {rebuild_total}"
        );
        // State construction stays outside the timed closures (the solver
        // pays it once per run); it accumulates across criterion
        // iterations, which leaves the per-iteration op count unchanged.
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                black_box(llp_bench::run_weight_index_incremental(
                    &mut index, factor, m, &rounds,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild", n), &n, |b, _| {
            b.iter(|| {
                black_box(llp_bench::run_weight_prefix_rebuild(
                    &mut exponent,
                    factor,
                    m,
                    &rounds,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_seidel,
    bench_lexico,
    bench_welzl,
    bench_svm_qp,
    bench_parallel_scan,
    bench_columnar,
    bench_weight_index
);
criterion_main!(benches);
