//! Microbenchmarks of the basis solvers (the `T_b`/`T_v` primitives of
//! Propositions 4.1–4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llp_core::instances::svm::SvmPoint;
use llp_solver::lexico::lex_min_optimum;
use llp_solver::seidel::{self, SeidelConfig};
use llp_solver::svm_qp::{self, SvmConfig};
use llp_solver::welzl::min_enclosing_ball;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_seidel(c: &mut Criterion) {
    let mut group = c.benchmark_group("seidel_lp");
    group.sample_size(20);
    for d in [2usize, 4, 6] {
        for m in [1_000usize, 10_000] {
            let mut rng = StdRng::seed_from_u64(1);
            let (p, cs) = llp_workloads::random_lp(m, d, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("d{d}"), m),
                &(p, cs),
                |b, (p, cs)| {
                    b.iter(|| {
                        let mut r = StdRng::seed_from_u64(2);
                        black_box(seidel::solve(
                            cs,
                            &p.objective,
                            &SeidelConfig::default(),
                            &mut r,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_lexico(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexicographic_lp");
    group.sample_size(20);
    for d in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(3);
        let (p, cs) = llp_workloads::random_lp(5_000, d, &mut rng);
        group.bench_function(BenchmarkId::new("lex_min", d), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(4);
                black_box(lex_min_optimum(
                    &cs,
                    &p.objective,
                    &SeidelConfig::default(),
                    &mut r,
                ))
            })
        });
    }
    group.finish();
}

fn bench_welzl(c: &mut Criterion) {
    let mut group = c.benchmark_group("welzl_meb");
    group.sample_size(20);
    for d in [2usize, 3, 5] {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = llp_workloads::ball_cloud(20_000, d, 5.0, &mut rng);
        group.bench_function(BenchmarkId::new("meb", d), |b| {
            b.iter(|| {
                let mut r = StdRng::seed_from_u64(6);
                black_box(min_enclosing_ball(&pts, &mut r))
            })
        });
    }
    group.finish();
}

fn bench_svm_qp(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_active_set");
    group.sample_size(20);
    for d in [2usize, 4] {
        let mut rng = StdRng::seed_from_u64(7);
        let (pts, _) = llp_workloads::separable_clouds(10_000, d, 0.5, &mut rng);
        let points: Vec<Vec<f64>> = pts.iter().map(|p: &SvmPoint| p.x.clone()).collect();
        let labels: Vec<i8> = pts.iter().map(|p| p.y).collect();
        group.bench_function(BenchmarkId::new("qp", d), |b| {
            b.iter(|| black_box(svm_qp::solve(&points, &labels, &SvmConfig::default())))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_seidel,
    bench_lexico,
    bench_welzl,
    bench_svm_qp
);
criterion_main!(benches);
