//! Microbenchmarks of the solve-service hot paths: fingerprinting,
//! cache-hit admission, and batch coalescing. The solver itself is
//! benchmarked elsewhere (`solvers.rs`); here the measured quantity is
//! the *serving overhead* per request, which is what bounds service
//! throughput once results are cached.

use criterion::{criterion_group, criterion_main, Criterion};
use llp_bench::RunBudget;
use llp_core::instances::lp::LpProblem;
use llp_geom::Halfspace;
use llp_service::{Model, RequestInput, Service, ServiceConfig, SolveRequest};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

/// A small inline LP (fast to solve) so the coalescing bench measures
/// queue/batch machinery, not Algorithm 1.
fn small_inline_lp() -> (LpProblem, Vec<Halfspace>) {
    llp_workloads::random_lp(512, 2, 7)
}

fn inline_request(seed: u64) -> SolveRequest {
    let (p, cs) = small_inline_lp();
    SolveRequest {
        input: RequestInput::InlineLp(p, cs),
        model: Model::Ram,
        budget: RunBudget::Quick,
        seed,
    }
}

fn bench_fingerprint(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_fingerprint");
    let (p, cs) = llp_workloads::random_lp(10_000, 3, 11);
    let req = SolveRequest {
        input: RequestInput::InlineLp(p, cs),
        model: Model::Ram,
        budget: RunBudget::Quick,
        seed: 1,
    };
    group.bench_function("inline_lp_10k", |b| b.iter(|| black_box(req.fingerprint())));
    let named = SolveRequest::scenario("lp_uniform", Model::Ram, RunBudget::Quick, 1);
    group.bench_function("scenario_name", |b| {
        b.iter(|| black_box(named.fingerprint()))
    });
    group.finish();
}

fn bench_cache_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_cache_hit");
    let svc = Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let req = inline_request(42);
    // Warm the cache once; every timed submit is then a pure admission +
    // LRU probe round-trip.
    svc.submit(req.clone()).unwrap().wait();
    group.bench_function("submit_hit", |b| {
        b.iter(|| black_box(svc.submit(req.clone()).unwrap().wait()))
    });
    group.finish();
}

fn bench_coalesced_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_batch");
    group.sample_size(20);
    let svc = Service::new(ServiceConfig {
        workers: 2,
        cache_capacity: 0, // force a fresh solve per iteration
        ..ServiceConfig::default()
    });
    // A fresh seed per iteration keeps the fingerprint new, so each
    // replay is 1 solve + 15 coalesced joins (never a cache hit).
    let fresh = AtomicU64::new(1_000);
    group.bench_function("replay_16_duplicates", |b| {
        b.iter(|| {
            let req = inline_request(fresh.fetch_add(1, Ordering::Relaxed));
            black_box(svc.run_replay(vec![req; 16]))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fingerprint,
    bench_cache_hit,
    bench_coalesced_batch
);
criterion_main!(benches);
