//! Section 5 benches: hard-instance generation, protocols, and the 2-D LP
//! reduction (experiments F1/F2/T12's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llp_lowerbound::{augindex, hard, protocol, reduction};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_hard_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_hard_sampling");
    group.sample_size(10);
    for (n_base, rounds) in [(16usize, 1u32), (16, 2), (8, 3)] {
        let params = hard::HardParams { n_base, rounds };
        group.bench_function(BenchmarkId::new(format!("N{n_base}"), rounds), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                black_box(hard::sample(&params, &mut rng))
            })
        });
    }
    group.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("t12_protocols");
    group.sample_size(20);
    let n = 1 << 16;
    let x: Vec<u8> = (0..n - 1).map(|i| ((i * 13 + 5) % 2) as u8).collect();
    let inst = augindex::build_instance(&x, n / 3 + 1, augindex::default_steep(n));
    for r in [1u32, 2, 4] {
        group.bench_function(BenchmarkId::new("r_round", r), |b| {
            b.iter(|| black_box(protocol::r_round(&inst, r)))
        });
    }
    group.finish();
}

fn bench_lp_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_lp_reduction");
    group.sample_size(10);
    for n in [64usize, 512] {
        let x: Vec<u8> = (0..n - 1).map(|i| ((i * 7 + 1) % 2) as u8).collect();
        let inst = augindex::build_instance(&x, n / 2, augindex::default_steep(n));
        group.bench_function(BenchmarkId::new("exact_lp", n), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                black_box(reduction::answer_via_lp(&inst, &mut rng))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_hard_sampling,
    bench_protocols,
    bench_lp_reduction
);
criterion_main!(benches);
