//! End-to-end benches of Algorithm 1 in RAM and in the three big data
//! models (experiments T1–T4's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llp_bigdata::coordinator as coord_impl;
use llp_bigdata::mpc::{self as mpc_impl, MpcConfig};
use llp_bigdata::streaming::{self as stream_impl, SamplingMode};
use llp_core::clarkson::ClarksonConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: usize = 100_000;

fn bench_ram_meta(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_ram_meta");
    group.sample_size(10);
    for r in [1u32, 2, 4] {
        let (p, cs) = llp_workloads::random_lp(N, 2, 1);
        group.bench_function(BenchmarkId::new("r", r), |b| {
            b.iter(|| {
                let mut rr = StdRng::seed_from_u64(2);
                black_box(
                    llp_core::clarkson_solve(&p, &cs, &ClarksonConfig::calibrated(r), &mut rr)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_streaming");
    group.sample_size(10);
    for r in [1u32, 2, 4] {
        let (p, cs) = llp_workloads::random_lp(N, 2, 3);
        for (mode, name) in [
            (SamplingMode::TwoPassIid, "2pass"),
            (SamplingMode::OnePassSpeculative, "1pass"),
        ] {
            group.bench_function(BenchmarkId::new(name, r), |b| {
                b.iter(|| {
                    let mut rr = StdRng::seed_from_u64(4);
                    black_box(
                        stream_impl::solve(&p, &cs, &ClarksonConfig::calibrated(r), mode, &mut rr)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_coordinator(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_coordinator");
    group.sample_size(10);
    for k in [2usize, 16] {
        let (p, cs) = llp_workloads::random_lp(N, 2, 5);
        group.bench_function(BenchmarkId::new("k", k), |b| {
            b.iter(|| {
                let mut rr = StdRng::seed_from_u64(6);
                black_box(
                    coord_impl::solve(&p, cs.clone(), k, &ClarksonConfig::calibrated(2), &mut rr)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_mpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("t4_mpc");
    group.sample_size(10);
    for delta in [0.33f64, 0.5] {
        let (p, cs) = llp_workloads::random_lp(N, 2, 7);
        group.bench_function(BenchmarkId::new("delta", format!("{delta:.2}")), |b| {
            b.iter(|| {
                let mut rr = StdRng::seed_from_u64(8);
                black_box(
                    mpc_impl::solve(&p, cs.clone(), &MpcConfig::calibrated(delta), &mut rr)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ram_meta,
    bench_streaming,
    bench_coordinator,
    bench_mpc
);
criterion_main!(benches);
