//! Baseline comparisons (experiments T5/T8's timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use llp_baselines::{chan_chen, clarkson_classic};
use llp_bigdata::streaming::{self as stream_impl, SamplingMode};
use llp_core::clarkson::ClarksonConfig;
use llp_core::instances::lp::LpProblem;
use llp_geom::Halfspace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: usize = 100_000;

fn setup() -> (LpProblem, Vec<Halfspace>, Vec<chan_chen::Line>) {
    let lines = llp_workloads::random_lines(N, 1);
    let cs: Vec<Halfspace> = lines
        .iter()
        .map(|l| Halfspace::new(vec![l.slope, -1.0], -l.intercept))
        .collect();
    (LpProblem::new(vec![0.0, 1.0]), cs, lines)
}

fn bench_ours_vs_baselines(c: &mut Criterion) {
    let (p, cs, lines) = setup();
    let mut group = c.benchmark_group("t5_baselines_2d");
    group.sample_size(10);
    for r in [2u32, 3] {
        group.bench_function(BenchmarkId::new("ours", r), |b| {
            b.iter(|| {
                let mut rr = StdRng::seed_from_u64(2);
                black_box(
                    stream_impl::solve(
                        &p,
                        &cs,
                        &ClarksonConfig::calibrated(r),
                        SamplingMode::OnePassSpeculative,
                        &mut rr,
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_function(BenchmarkId::new("chan_chen", r), |b| {
            b.iter(|| black_box(chan_chen::minimize_envelope(&lines, -1e6, 1e6, r)))
        });
    }
    group.bench_function("clarkson_classic", |b| {
        b.iter(|| {
            let mut rr = StdRng::seed_from_u64(3);
            black_box(clarkson_classic::solve_streaming(&p, &cs, &mut rr).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ours_vs_baselines);
criterion_main!(benches);
