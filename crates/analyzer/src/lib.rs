#![forbid(unsafe_code)]
//! `llp_analyzer` — a workspace determinism-and-invariant lint pass.
//!
//! The repo's central contract — bit-identical solutions, stats, and
//! meters at any `LLP_THREADS`/worker count — was previously enforced
//! only dynamically (the differential suites in
//! `tests/parallel_determinism.rs` and `tests/service_determinism.rs`).
//! This crate enforces it *statically*: an offline, dependency-free pass
//! over the workspace's own Rust sources, built on a hand-rolled lexer
//! ([`lexer`]) in the same vendored-from-scratch spirit as
//! `vendor/serde_derive`'s proc-macro parser.
//!
//! The lint catalog (DESIGN.md §8):
//!
//! | lint | tier | scope |
//! |------|------|-------|
//! | `nondeterministic-collections` | deny | deterministic crates |
//! | `wall-clock` | deny | deterministic + timing crates |
//! | `env-read` | deny | everywhere but `vendor/llp_par` |
//! | `unseeded-rng` | deny | deterministic + timing crates |
//! | `lock-order` | deny | any crate with a `Mutex` (interprocedural) |
//! | `panic-path` | deny | panic-capable sites reachable under a guard |
//! | `fp-kernel-purity` | deny | KERNEL_FILES' transitive call trees |
//! | `hot-loop-alloc` | deny | the violation-scan kernels |
//! | `missing-forbid-unsafe` | deny | every crate root |
//!
//! The three interprocedural lints run over a workspace-wide call graph
//! with SCC-fixpoint summaries ([`callgraph`]); see DESIGN.md §8.
//!
//! Suppressions are reasoned, line-targeted comments:
//!
//! ```text
//! // llp-analyzer: allow(wall-clock) -- metering is this crate's purpose
//! let start = Instant::now();
//! ```
//!
//! An allow covers the next non-allow source line; an allow nothing fired
//! under is itself a deny-tier `unused-allow` finding, and a comment that
//! starts `// llp-analyzer:` but does not parse is `malformed-allow` —
//! suppressions cannot silently rot.

pub mod callgraph;
pub mod lexer;
pub mod lints;
pub mod lockorder;
pub mod policy;
pub mod purity;
pub mod report;

use callgraph::{CallGraph, FileMeta};
use lexer::{lex, Lexed};
use policy::{Class, CrateSpec};
use report::{AnalyzerReport, Finding, Severity};
use std::collections::BTreeMap;
use std::path::Path;

/// One parsed `// llp-analyzer: allow(<lint>) -- <reason>` annotation.
#[derive(Clone, Debug)]
struct Allow {
    lint: String,
    /// The source line the allow suppresses (first non-allow line below).
    target_line: u32,
    /// Line of the annotation itself (for unused-allow findings).
    own_line: u32,
    used: bool,
}

/// The annotation grammar prefix.
const ALLOW_PREFIX: &str = "llp-analyzer:";

/// Parses the allow annotations of one lexed file. Returns the allows
/// plus malformed-annotation findings.
fn parse_allows(path: &str, lexed: &Lexed) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    // Lines occupied by allow comments, so stacked allows above one
    // source line all target that line.
    let annotation_lines: Vec<u32> = lexed
        .comments
        .iter()
        .filter(|c| {
            c.text
                .trim_start_matches('/')
                .trim_start()
                .starts_with(ALLOW_PREFIX)
        })
        .map(|c| c.line)
        .collect();
    for c in &lexed.comments {
        let body = c.text.trim_start_matches('/').trim_start();
        let Some(rest) = body.strip_prefix(ALLOW_PREFIX) else {
            continue;
        };
        let rest = rest.trim();
        let parsed = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')'))
            .and_then(|(lint, tail)| {
                let tail = tail.trim_start();
                let reason = tail.strip_prefix("--").map(str::trim).unwrap_or("");
                if reason.is_empty() {
                    None
                } else {
                    Some(lint.trim().to_string())
                }
            });
        match parsed {
            Some(lint) if lints::LINT_NAMES.contains(&lint.as_str()) => {
                // Target: first line after the annotation that is not
                // itself an annotation line.
                let mut target = c.line + 1;
                while annotation_lines.contains(&target) {
                    target += 1;
                }
                allows.push(Allow {
                    lint,
                    target_line: target,
                    own_line: c.line,
                    used: false,
                });
            }
            Some(lint) => findings.push(Finding::new(
                "malformed-allow",
                Severity::Deny,
                path,
                c.line,
                format!(
                    "allow names unknown lint `{lint}`; known: {:?}",
                    lints::LINT_NAMES
                ),
            )),
            None => findings.push(Finding::new(
                "malformed-allow",
                Severity::Deny,
                path,
                c.line,
                "llp-analyzer annotation must be `allow(<lint>) -- <reason>` \
                 (the reason is mandatory)",
            )),
        }
    }
    (allows, findings)
}

/// The result of analyzing a set of crates.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Surviving findings, sorted.
    pub report: AnalyzerReport,
}

/// Analyzes pre-built crate specs (the fixture tests drive this
/// directly; [`analyze_workspace`] discovers the real tree first).
pub fn analyze_crates(crates: &[CrateSpec]) -> Analysis {
    let mut findings: Vec<Finding> = Vec::new();
    let mut allows_by_file: BTreeMap<String, Vec<Allow>> = BTreeMap::new();

    // Lex every file once; the flat list feeds both the per-file lints
    // and the workspace-wide call graph.
    let lexed_files: Vec<(&CrateSpec, String, Lexed)> = crates
        .iter()
        .flat_map(|spec| {
            spec.files
                .iter()
                .map(move |f| (spec, f.path.clone(), lex(&f.text)))
        })
        .collect();
    let files_scanned = lexed_files.len() as u64;

    for (spec, path, lexed) in &lexed_files {
        let (allows, malformed) = parse_allows(path, lexed);
        findings.extend(malformed);
        allows_by_file
            .entry(path.clone())
            .or_default()
            .extend(allows);
        findings.extend(lints::scan_file(path, lexed, spec.class, &spec.key));
        if spec.root_files.contains(path) {
            findings.extend(lints::check_forbid_unsafe(path, lexed));
        }
    }

    // The interprocedural passes see every non-vendor crate at once:
    // lock-order cycles, blocking-under-guard, and panic paths are
    // detected across crate boundaries (service → core), and kernel
    // purity follows calls wherever they lead.
    let graph = CallGraph::build(
        lexed_files
            .iter()
            .filter(|(spec, _, _)| spec.class != Class::VendorExempt)
            .map(|(spec, path, lexed)| FileMeta {
                path,
                crate_key: &spec.key,
                lexed,
            })
            .collect(),
    );
    findings.extend(lockorder::analyze_graph(
        &graph,
        lockorder::Depth::Transitive,
    ));
    findings.extend(purity::analyze_graph(&graph));

    // Apply suppressions: a finding is suppressed by an allow of its lint
    // targeting its line in its file.
    let mut suppressed = 0u64;
    let mut survivors: Vec<Finding> = Vec::new();
    for f in findings {
        let mut keep = true;
        if f.lint != "unused-allow" && f.lint != "malformed-allow" {
            if let Some(allows) = allows_by_file.get_mut(&f.path) {
                for a in allows.iter_mut() {
                    if a.lint == f.lint && u64::from(a.target_line) == f.line {
                        a.used = true;
                        suppressed += 1;
                        keep = false;
                        break;
                    }
                }
            }
        }
        if keep {
            survivors.push(f);
        }
    }

    // Unused allows are deny findings: a suppression that no longer
    // suppresses anything is stale documentation at best and a masked
    // regression at worst.
    for (path, allows) in &allows_by_file {
        for a in allows {
            if !a.used {
                survivors.push(Finding::new(
                    "unused-allow",
                    Severity::Deny,
                    path,
                    a.own_line,
                    format!(
                        "allow({}) suppresses nothing on line {}; remove it",
                        a.lint, a.target_line
                    ),
                ));
            }
        }
    }

    Analysis {
        report: AnalyzerReport::new(survivors, files_scanned, suppressed),
    }
}

/// Discovers the workspace under `root` and runs the full analysis.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    let crates = policy::discover(root)?;
    Ok(analyze_crates(&crates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use policy::SourceFile;

    fn one_crate(class: Class, key: &str, src: &str) -> Analysis {
        analyze_crates(&[CrateSpec {
            key: key.to_string(),
            class,
            files: vec![SourceFile {
                path: format!("crates/{key}/src/lib.rs"),
                text: src.to_string(),
            }],
            root_files: vec![],
        }])
    }

    #[test]
    fn allow_suppresses_next_line_and_counts() {
        let src = "\
// llp-analyzer: allow(wall-clock) -- metering the solve is the point\n\
let t = Instant::now();\n";
        let a = one_crate(Class::Timing, "bench", src);
        assert_eq!(a.report.deny, 0, "{:?}", a.report.findings);
        assert_eq!(a.report.suppressed, 1);
    }

    #[test]
    fn stacked_allows_target_the_same_line() {
        let src = "\
// llp-analyzer: allow(wall-clock) -- metering\n\
// llp-analyzer: allow(unseeded-rng) -- jitter source, never solver input\n\
let t = Instant::now(); let r = ThreadRng::default();\n";
        let a = one_crate(Class::Timing, "bench", src);
        assert_eq!(a.report.deny, 0, "{:?}", a.report.findings);
        assert_eq!(a.report.suppressed, 2);
    }

    #[test]
    fn unused_allow_is_a_deny_finding() {
        let src = "// llp-analyzer: allow(wall-clock) -- stale\nlet x = 1;\n";
        let a = one_crate(Class::Timing, "bench", src);
        assert_eq!(a.report.deny, 1);
        assert_eq!(a.report.findings[0].lint, "unused-allow");
    }

    #[test]
    fn reasonless_allow_is_malformed() {
        let src = "// llp-analyzer: allow(wall-clock)\nlet t = Instant::now();\n";
        let a = one_crate(Class::Timing, "bench", src);
        let lints: Vec<&str> = a.report.findings.iter().map(|f| f.lint.as_str()).collect();
        assert!(lints.contains(&"malformed-allow"), "{lints:?}");
        // And the finding is NOT suppressed by the malformed comment.
        assert!(lints.contains(&"wall-clock"), "{lints:?}");
    }

    #[test]
    fn wrong_lint_allow_does_not_suppress() {
        let src = "\
// llp-analyzer: allow(env-read) -- wrong lint\n\
let t = Instant::now();\n";
        let a = one_crate(Class::Timing, "bench", src);
        let lints: Vec<&str> = a.report.findings.iter().map(|f| f.lint.as_str()).collect();
        assert!(lints.contains(&"wall-clock"));
        assert!(lints.contains(&"unused-allow"));
    }
}
