//! Per-crate policy classes and workspace discovery.
//!
//! The central contract of this repo is **bit-identical solutions, stats,
//! and meters at any thread/worker count** (DESIGN.md §5). The lints
//! enforce that contract statically, but not every crate is held to the
//! same standard — the serving and bench layers *exist* to read clocks.
//! Each crate therefore gets a policy class:
//!
//! * [`Class::Deterministic`] — the solver stack. No `HashMap`/`HashSet`,
//!   no wall-clock reads, no env reads (except the documented
//!   `LLP_THREADS` owner `vendor/llp_par`), no unseeded RNG.
//! * [`Class::Timing`] — `llp_service` and `llp_bench`. Wall-clock reads
//!   are the product, but every read site must carry a reasoned
//!   allow annotation so new clock dependencies are conscious decisions.
//!   Collection-order lints are relaxed (the service keys batches by
//!   fingerprint; order never reaches an output without a sorted drain).
//! * [`Class::VendorExempt`] — the offline registry stand-ins
//!   (`rand`, `serde`, `serde_derive`, `proptest`, `criterion`). They
//!   emulate upstream APIs (criterion is *by definition* a wall-clock
//!   runner; `ThreadRng` is deliberately entropy-seeded), so only the
//!   structural lints (`missing-forbid-unsafe`, allow hygiene) apply.

use std::fs;
use std::path::{Path, PathBuf};

/// Policy class of a crate (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Full determinism lint set.
    Deterministic,
    /// Wall-clock permitted behind reasoned allows.
    Timing,
    /// Structural lints only.
    VendorExempt,
}

/// One crate (or crate-shaped source set) to analyze.
#[derive(Clone, Debug)]
pub struct CrateSpec {
    /// Short key (`"core"`, `"service"`, `"llp_par"`, `"facade"`, …).
    pub key: String,
    /// Policy class.
    pub class: Class,
    /// Source files: workspace-relative path + contents.
    pub files: Vec<SourceFile>,
    /// Crate-root files (lib.rs / bin roots) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub root_files: Vec<String>,
}

/// One source file (path is workspace-relative, `/`-separated).
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// Files whose loop bodies the `hot-loop-alloc` warn lint watches: the
/// violation-scan and weight-update kernels ROADMAP item 2 will turn into
/// arena-backed columnar code.
pub const KERNEL_FILES: &[&str] = &[
    "crates/core/src/lptype.rs",
    "crates/core/src/clarkson.rs",
    "crates/bigdata/src/common.rs",
];

/// The crate that owns `LLP_THREADS` (and env reads generally); see
/// DESIGN.md §7's thread-count precedence. Everything else gets the
/// `env-read` lint.
pub const ENV_OWNER: &str = "llp_par";

/// The static policy table: directory (relative to the workspace root)
/// → (crate key, class).
const CRATE_TABLE: &[(&str, &str, Class)] = &[
    ("crates/core", "core", Class::Deterministic),
    ("crates/num", "num", Class::Deterministic),
    ("crates/geom", "geom", Class::Deterministic),
    ("crates/solver", "solver", Class::Deterministic),
    ("crates/sampling", "sampling", Class::Deterministic),
    ("crates/models", "models", Class::Deterministic),
    ("crates/bigdata", "bigdata", Class::Deterministic),
    ("crates/lowerbound", "lowerbound", Class::Deterministic),
    ("crates/baselines", "baselines", Class::Deterministic),
    ("crates/workloads", "workloads", Class::Deterministic),
    ("crates/analyzer", "analyzer", Class::Deterministic),
    ("crates/service", "service", Class::Timing),
    ("crates/serve", "serve", Class::Timing),
    ("crates/bench", "bench", Class::Timing),
    // The chunk store is file-IO: checksummed frame decode is fully
    // deterministic, but like the other IO-facing crates its tests meter
    // real files, so clock reads stay legal behind reasoned allows.
    ("crates/store", "store", Class::Timing),
    ("vendor/llp_par", "llp_par", Class::Deterministic),
    ("vendor/rand", "rand", Class::VendorExempt),
    ("vendor/serde", "serde", Class::VendorExempt),
    ("vendor/serde_derive", "serde_derive", Class::VendorExempt),
    ("vendor/proptest", "proptest", Class::VendorExempt),
    ("vendor/criterion", "criterion", Class::VendorExempt),
];

/// Discovers the workspace's crates from `root` and loads their sources.
///
/// Besides the `CRATE_TABLE` crates (their `src/`, `tests/`, `benches/`
/// trees), the root facade package contributes `src/`, `tests/`, and
/// `examples/` as a deterministic crate — the differential suites must
/// themselves be clock- and order-free or their verdicts mean nothing.
/// Excluded everywhere: `target/` and any `fixtures/` directory (the
/// analyzer's own test corpus deliberately violates every lint).
pub fn discover(root: &Path) -> Result<Vec<CrateSpec>, String> {
    let mut crates = Vec::new();
    for (dir, key, class) in CRATE_TABLE {
        let base = root.join(dir);
        if !base.is_dir() {
            return Err(format!("workspace member {dir} missing under {root:?}"));
        }
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches"] {
            collect_rs(root, &base.join(sub), &mut files)?;
        }
        let root_files = files
            .iter()
            .map(|f| f.path.clone())
            .filter(|p| is_crate_root(p))
            .collect();
        crates.push(CrateSpec {
            key: (*key).to_string(),
            class: *class,
            files,
            root_files,
        });
    }
    // The root facade package.
    let mut files = Vec::new();
    for sub in ["src", "tests", "examples"] {
        collect_rs(root, &root.join(sub), &mut files)?;
    }
    let root_files = vec!["src/lib.rs".to_string()];
    crates.push(CrateSpec {
        key: "facade".to_string(),
        class: Class::Deterministic,
        files,
        root_files,
    });
    Ok(crates)
}

/// True for files that are crate roots (must carry
/// `#![forbid(unsafe_code)]`): `src/lib.rs`, `src/main.rs`, `src/bin/*`.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || path.contains("/src/bin/")
}

/// Recursively collects `.rs` files under `dir` (sorted traversal, so
/// findings and reports are byte-stable run to run).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(()); // optional subtree (most crates have no tests/)
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("read_dir {dir:?}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|s| s.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path).map_err(|e| format!("read {path:?}: {e}"))?;
            let rel = path
                .strip_prefix(root)
                .map_err(|_| format!("{path:?} escapes workspace root"))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { path: rel, text });
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the analysis root.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut cur = start
        .canonicalize()
        .map_err(|e| format!("canonicalize {start:?}: {e}"))?;
    loop {
        let manifest = cur.join("Cargo.toml");
        if manifest.is_file() {
            let text =
                fs::read_to_string(&manifest).map_err(|e| format!("read {manifest:?}: {e}"))?;
            if text.contains("[workspace]") {
                return Ok(cur);
            }
        }
        match cur.parent() {
            Some(p) => cur = p.to_path_buf(),
            None => return Err("no [workspace] Cargo.toml above the current directory".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_roots_are_recognized() {
        assert!(is_crate_root("crates/core/src/lib.rs"));
        assert!(is_crate_root("crates/analyzer/src/main.rs"));
        assert!(is_crate_root("crates/bench/src/bin/experiments.rs"));
        assert!(!is_crate_root("crates/core/src/clarkson.rs"));
        assert!(!is_crate_root("tests/properties.rs"));
    }
}
