//! Static lock-order analysis: the mutex-acquisition graph of a crate.
//!
//! ROADMAP item 4 (sharded admission queues + work-stealing) will
//! multiply `llp_service`'s lock surface; this pass exists *before* that
//! refactor so cycles and blocking-while-locked patterns are caught at
//! lint time, not in a soak run. Three steps:
//!
//! 1. **Mutex discovery** — struct fields and `let` bindings of type
//!    `Mutex<…>` name the lockable objects (`state: Mutex<State>` →
//!    mutex `state`).
//! 2. **Per-function acquisition scan** — a guard model tracks what is
//!    held where: `let g = foo.lock()` holds `foo` until `drop(g)` or the
//!    end of the binding's block; an unbound `.lock()` (a statement
//!    temporary) is released at the next `;` at the same depth.
//!    `Condvar::wait(g)` keeps the guard held (it re-acquires before
//!    returning). Acquisitions are propagated **one call-graph level**:
//!    calling a function that itself directly acquires counts as
//!    acquiring (so `self.lock()` wrappers participate).
//! 3. **Graph checks** — acquiring B while A is held adds edge A→B.
//!    A cycle in the edge set (including A→A re-entry, an instant
//!    deadlock with std's non-reentrant `Mutex`) is a deny finding, as is
//!    holding any lock across a blocking operation (channel `send`/
//!    `recv`, `join`, or a solve: `solve*`/`execute` calls).

use crate::lexer::{Lexed, Tok, TokKind};
use crate::report::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Call-shaped identifiers that block (or are unboundedly expensive) and
/// must not run under a held lock.
fn is_blocking_call(name: &str) -> bool {
    name == "send"
        || name == "recv"
        || name == "recv_timeout"
        || name == "join"
        || name == "execute"
        || name.starts_with("solve")
}

/// Per-function facts from the first pass.
#[derive(Clone, Debug, Default)]
struct FnFacts {
    /// Mutexes the body acquires directly (for one-level propagation).
    /// A set, not a sequence: a callee that locks, releases, and re-locks
    /// the same mutex acquires it *once* from the caller's perspective —
    /// propagated acquisitions edge against the caller's held set, never
    /// against each other.
    direct: BTreeSet<String>,
}

/// A lock currently held during the linear scan of a body.
#[derive(Clone, Debug)]
struct Held {
    mutex: String,
    /// Guard variable, if the acquisition was `let`-bound.
    guard: Option<String>,
    /// Brace depth at the binding; leaving it releases the guard.
    depth: i32,
    /// Statement temporary: released at the next `;` at `depth`.
    temp: bool,
}

/// Runs the analysis over all files of one crate. `path_of` each file is
/// used in findings.
pub fn analyze_crate(files: &[(String, Lexed)]) -> Vec<Finding> {
    let mut mutexes: BTreeSet<String> = BTreeSet::new();
    for (_, lexed) in files {
        discover_mutexes(&lexed.toks, &mut mutexes);
    }
    if mutexes.is_empty() {
        return Vec::new();
    }

    // Pass 1: per-function direct acquisitions (for call propagation).
    let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
    for (path, lexed) in files {
        for (name, body) in functions(&lexed.toks) {
            let mut f = FnFacts::default();
            scan_body(path, body, &mutexes, &BTreeMap::new(), Some(&mut f), None);
            facts.entry(name).or_insert(f);
        }
    }

    // Pass 2: full scan with one-level propagation; collect edges and
    // blocking-while-held findings.
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (path, lexed) in files {
        for (_, body) in functions(&lexed.toks) {
            scan_body(
                path,
                body,
                &mutexes,
                &facts,
                None,
                Some((&mut edges, &mut findings)),
            );
        }
    }

    // Cycle detection over the acquisition-order graph.
    findings.extend(find_cycles(&edges));
    findings
}

/// Collects mutex names: `name : Mutex <` fields/params and
/// `let name = Mutex :: new` bindings.
fn discover_mutexes(toks: &[Tok], out: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if toks[i].text == "Mutex" {
            // `name: Mutex<…>` (struct field or param).
            if i >= 2 && toks[i - 1].text == ":" && toks[i - 2].kind == TokKind::Ident {
                out.insert(toks[i - 2].text.clone());
            }
            // `let name = Mutex::new(…)` / `let name = Arc::new(Mutex::new(…))`
            // — walk back past `Arc :: new (` to the `let`.
            let mut j = i;
            while j >= 1
                && (toks[j - 1].kind == TokKind::Punct
                    || toks[j - 1].text == "Arc"
                    || toks[j - 1].text == "new")
                && toks[j - 1].text != ";"
                && toks[j - 1].text != "{"
            {
                j -= 1;
            }
            let plain_let =
                j >= 2 && toks[j - 1].kind == TokKind::Ident && toks[j - 2].text == "let";
            let mut_let = j >= 3
                && toks[j - 1].kind == TokKind::Ident
                && toks[j - 2].text == "mut"
                && toks[j - 3].text == "let";
            if plain_let || mut_let {
                out.insert(toks[j - 1].text.clone());
            }
        }
    }
}

/// Splits a token stream into `fn` bodies: returns `(name, body_tokens)`
/// for every function, where `body_tokens` is the token slice between the
/// body's outer braces (inclusive of nested ones).
fn functions(toks: &[Tok]) -> Vec<(String, &[Tok])> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "fn" {
            if let Some(name_tok) = toks.get(i + 1) {
                let name = name_tok.text.clone();
                // Find the body `{` — skip the signature (param parens,
                // return type, where clause) by scanning for the first
                // `{` at angle/paren depth 0. `;` first → trait method
                // declaration, no body.
                let mut j = i + 2;
                let mut paren: i32 = 0;
                let mut body_start = None;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "(" | "[" => paren += 1,
                        ")" | "]" => paren -= 1,
                        "{" if paren == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        ";" if paren == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(start) = body_start {
                    let mut depth = 0i32;
                    let mut k = start;
                    while k < toks.len() {
                        match toks[k].text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    out.push((name, &toks[start..(k + 1).min(toks.len())]));
                    i = k + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}

type EdgeSink<'a> = (
    &'a mut BTreeMap<(String, String), (String, u32)>,
    &'a mut Vec<Finding>,
);

/// Linear scan of one function body with the guard model. In pass 1
/// (`collect` = Some) it only records direct acquisitions; in pass 2
/// (`sink` = Some) it also consults `facts` for one-level call
/// propagation, emits hold-order edges, and flags blocking calls made
/// while holding.
fn scan_body(
    path: &str,
    body: &[Tok],
    mutexes: &BTreeSet<String>,
    facts: &BTreeMap<String, FnFacts>,
    mut collect: Option<&mut FnFacts>,
    mut sink: Option<EdgeSink<'_>>,
) {
    let mut depth: i32 = 0;
    let mut held: Vec<Held> = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            (TokKind::Punct, ";") => {
                held.retain(|h| !(h.temp && h.depth == depth));
            }
            // `drop(g)` releases guard g.
            (TokKind::Ident, "drop") if body.get(i + 1).is_some_and(|n| n.text == "(") => {
                if let Some(g) = body.get(i + 2) {
                    held.retain(|h| h.guard.as_deref() != Some(g.text.as_str()));
                }
            }
            (TokKind::Ident, name) => {
                let is_call = body.get(i + 1).is_some_and(|n| n.text == "(");
                if !is_call {
                    i += 1;
                    continue;
                }
                // `cond.wait(g)` keeps g held (re-acquired on return) —
                // the canonical pattern, never a finding.
                if name == "wait" || name == "wait_while" || name == "wait_timeout" {
                    i += 1;
                    continue;
                }
                // `recv.lock()` — a direct acquisition when the
                // receiver's last path segment is a known mutex.
                if name == "lock"
                    && i >= 2
                    && body[i - 1].text == "."
                    && mutexes.contains(body[i - 2].text.as_str())
                {
                    let mutex = body[i - 2].text.clone();
                    acquire(
                        path,
                        body,
                        i,
                        depth,
                        &mutex,
                        &mut held,
                        &mut collect,
                        &mut sink,
                    );
                    i += 1;
                    continue;
                }
                if !held.is_empty() && is_blocking_call(name) {
                    if let Some((_, findings)) = sink.as_mut() {
                        let held_names: Vec<&str> = held.iter().map(|h| h.mutex.as_str()).collect();
                        findings.push(Finding::new(
                            "lock-order",
                            Severity::Deny,
                            path,
                            t.line,
                            format!(
                                "blocking call `{name}(…)` while holding lock(s) \
                                 {held_names:?}; release the guard first (or allow \
                                 with the reason the call cannot block)"
                            ),
                        ));
                    }
                }
                // One-level call propagation: a direct call to a crate
                // function (incl. `self.lock()`-style wrappers) that
                // itself acquires.
                if sink.is_some() {
                    if let Some(f) = facts.get(name) {
                        for acq in f.direct.clone() {
                            acquire(
                                path,
                                body,
                                i,
                                depth,
                                &acq,
                                &mut held,
                                &mut collect,
                                &mut sink,
                            );
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Records one acquisition at token index `i`: emits hold-order edges
/// against everything currently held, then pushes the new guard
/// (let-bound or statement-temporary, per the surrounding tokens).
#[allow(clippy::too_many_arguments)]
fn acquire(
    path: &str,
    body: &[Tok],
    i: usize,
    depth: i32,
    mutex: &str,
    held: &mut Vec<Held>,
    collect: &mut Option<&mut FnFacts>,
    sink: &mut Option<EdgeSink<'_>>,
) {
    let line = body[i].line;
    if let Some(f) = collect.as_mut() {
        f.direct.insert(mutex.to_string());
    }
    if let Some((edges, findings)) = sink.as_mut() {
        for h in held.iter() {
            if h.mutex == mutex {
                findings.push(Finding::new(
                    "lock-order",
                    Severity::Deny,
                    path,
                    line,
                    format!(
                        "re-acquiring `{mutex}` while already held: std::sync::Mutex \
                         is non-reentrant; this deadlocks"
                    ),
                ));
            } else {
                edges
                    .entry((h.mutex.clone(), mutex.to_string()))
                    .or_insert_with(|| (path.to_string(), line));
            }
        }
    }
    // Binding shape: walk back from the receiver to the statement start;
    // `let [mut] g = …` binds guard g.
    let guard = guard_binding(body, i);
    let temp = guard.is_none();
    held.push(Held {
        mutex: mutex.to_string(),
        guard,
        depth,
        temp,
    });
}

/// Finds the `let [mut] g =` binding a `.lock()` at token `i` flows into,
/// scanning back to the start of the statement.
fn guard_binding(body: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        let t = &body[j - 1];
        if t.text == ";" || t.text == "{" || t.text == "}" {
            return None;
        }
        if t.text == "let" {
            // `let g = …` or `let mut g = …` or `let (a, b) = …` (a
            // destructuring bind — treat the tuple as unnamed: temp).
            let g = body.get(j).filter(|t| t.kind == TokKind::Ident)?;
            if g.text == "mut" {
                return body.get(j + 1).map(|t| t.text.clone());
            }
            return Some(g.text.clone());
        }
        j -= 1;
    }
    None
}

/// DFS cycle detection over the acquisition-order edges; each cycle is
/// reported once, anchored at its lexicographically first node.
fn find_cycles(edges: &BTreeMap<(String, String), (String, u32)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut findings = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // Find a path start → … → start.
        let mut stack = vec![(start, vec![start])];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, trail)) = stack.pop() {
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    // Report only at the cycle's smallest node, so each
                    // cycle appears once.
                    if trail.iter().all(|n| *n >= start) {
                        let (path, line) = &edges[&(node.to_string(), next.to_string())];
                        let mut cycle = trail.clone();
                        cycle.push(start);
                        findings.push(Finding::new(
                            "lock-order",
                            Severity::Deny,
                            path,
                            *line,
                            format!(
                                "lock-order cycle {}: some interleaving deadlocks; \
                                 impose one global acquisition order",
                                cycle.join(" -> ")
                            ),
                        ));
                    }
                } else if seen.insert(next) {
                    let mut t = trail.clone();
                    t.push(next);
                    stack.push((next, t));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        analyze_crate(&[("crates/x/src/lib.rs".to_string(), lex(src))])
    }

    #[test]
    fn opposite_order_is_a_cycle() {
        let src = "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
            fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }
        ";
        let f = run(src);
        assert!(
            f.iter()
                .any(|x| x.lint == "lock-order" && x.message.contains("cycle")),
            "{f:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
            fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn send_under_lock_is_flagged_and_scoped_release_is_not() {
        let src = "
            struct S { state: Mutex<u32> }
            fn bad(s: &S, tx: &Sender<u32>) { let g = s.state.lock(); tx.send(1); }
            fn good(s: &S, tx: &Sender<u32>) { { let g = s.state.lock(); } tx.send(1); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send"));
    }

    #[test]
    fn drop_releases_and_temp_guards_end_at_statement() {
        let src = "
            struct S { state: Mutex<u32> }
            fn f(s: &S, tx: &Sender<u32>) { let g = s.state.lock(); drop(g); tx.send(1); }
            fn h(s: &S, tx: &Sender<u32>) { s.state.lock().x = 1; tx.send(1); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn wrapper_fn_propagates_one_level() {
        let src = "
            struct S { state: Mutex<u32> }
            fn lock_state(s: &S) -> MutexGuard<u32> { s.state.lock() }
            fn f(s: &S, tx: &Sender<u32>) { let g = lock_state(s); tx.send(1); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("state"), "{f:?}");
    }

    #[test]
    fn solve_under_lock_is_flagged() {
        let src = "
            struct S { state: Mutex<u32> }
            fn f(s: &S) { let g = s.state.lock(); let r = solve_model(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("solve_model"));
    }

    #[test]
    fn sequential_reacquire_in_callee_does_not_poison_callers() {
        // The callee locks, releases (block close), and locks again —
        // that is two acquisitions in sequence, not a nested re-entry,
        // so calling it must not report a deadlock.
        let src = "
            struct S { state: Mutex<u32> }
            fn worker(s: &S) { { let g = s.state.lock(); } let g2 = s.state.lock(); }
            fn spawn_it(s: &S) { worker(s); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn condvar_wait_keeps_guard_without_finding() {
        let src = "
            struct S { state: Mutex<u32>, cond: Condvar }
            fn f(s: &S) { let mut g = s.state.lock(); g = s.cond.wait(g); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }
}
