//! Interprocedural lock-order and panic-path analysis over the
//! workspace call graph.
//!
//! ROADMAP item 4 (sharded admission queues + work-stealing) will
//! multiply `llp_service`'s lock surface; this pass exists *before*
//! that refactor so cycles, blocking-while-locked, and
//! panic-while-locked patterns are caught at lint time, not in a soak
//! run. The guard model is intraprocedural and linear:
//!
//! - `let g = foo.lock()` holds `foo` until `drop(g)` or the end of the
//!   binding's block; an unbound `.lock()` (a statement temporary) is
//!   released at the next `;` at the same depth. `Condvar::wait(g)`
//!   keeps the guard held (it re-acquires before returning).
//! - Calls consult the [`CallGraph`] summaries: a call to a function
//!   whose **transitive** call tree acquires `m` counts as acquiring
//!   `m` here ([`Depth::Transitive`] — the fixpoint over SCCs). The
//!   acquisition is held past the statement only when the callee's
//!   signature returns a guard type (`-> MutexGuard<…>` wrappers);
//!   otherwise the callee released it before returning and it edges as
//!   a statement temporary.
//! - [`Depth::OneLevel`] replays the pre-engine behavior (immediate
//!   callees' *direct* acquisitions only) and exists so a regression
//!   test can prove the fixpoint catches cycles one level missed.
//!
//! Findings (all deny-tier):
//!
//! - `lock-order`: acquiring B while A is held adds edge A→B; a cycle
//!   in the workspace-wide edge set (including A→A re-entry, an
//!   instant deadlock with std's non-reentrant `Mutex`) is a finding,
//!   as is reaching a blocking operation (channel `send`/`recv`,
//!   `join`, a solve) while holding — now through any call depth, with
//!   the witness chain in the message.
//! - `panic-path`: a panic-capable site (`unwrap`/`expect`/
//!   `panic!`-family/indexing) executed, or reachable through calls,
//!   while a guard is held. A panic there poisons the mutex and every
//!   later `lock().expect(…)` cascades. `.unwrap()`/`.expect()` chained
//!   directly onto `lock()`/`wait*()` is exempt: that is poison
//!   *plumbing* — it can only panic if the mutex is already poisoned,
//!   never the origin of the poisoning.

use crate::callgraph::{is_blocking_call, is_keyword, is_poison_plumbing, CallGraph};
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// How far acquisitions propagate through calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Depth {
    /// Immediate callees' direct acquisitions only — the historical
    /// one-level behavior, kept as a regression baseline.
    OneLevel,
    /// Full fixpoint summaries: acquisition, blocking, and panic facts
    /// from the entire transitive call tree.
    Transitive,
}

/// A lock currently held during the linear scan of a body.
#[derive(Clone, Debug)]
struct Held {
    mutex: String,
    /// Guard variable, if the acquisition was `let`-bound.
    guard: Option<String>,
    /// Brace depth at the binding; leaving it releases the guard.
    depth: i32,
    /// Statement temporary: released at the next `;` at `depth`.
    temp: bool,
}

/// Acquisition-order edges: (held, acquired) → first witness (path, line).
type Edges = BTreeMap<(String, String), (String, u32)>;

/// Runs lock-order (and, at [`Depth::Transitive`], panic-path) over the
/// whole graph. Edges from every function land in one workspace-wide
/// set, so cycles split across crates are still cycles.
pub fn analyze_graph(g: &CallGraph<'_>, depth: Depth) -> Vec<Finding> {
    if g.mutexes.is_empty() {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let mut edges: Edges = BTreeMap::new();
    for d in 0..g.defs.len() {
        scan_def(g, d, depth, &mut edges, &mut findings);
    }
    findings.extend(find_cycles(&edges));
    findings
}

/// Scans one definition's body with the guard model.
fn scan_def(
    g: &CallGraph<'_>,
    d: usize,
    depth_mode: Depth,
    edges: &mut Edges,
    findings: &mut Vec<Finding>,
) {
    let def = &g.defs[d];
    let file = &g.files[def.file];
    let toks: &[Tok] = &file.lexed.toks;
    let path = file.path;
    let nested = &g.nested[d];
    let site_at: BTreeMap<usize, usize> = g.calls[d]
        .iter()
        .enumerate()
        .map(|(si, s)| (s.tok, si))
        .collect();

    let mut depth: i32 = 0;
    let mut held: Vec<Held> = Vec::new();
    let mut i = def.body.0;
    while i <= def.body.1 && i < toks.len() {
        if let Some(&(_, end)) = nested.iter().find(|(s, _)| *s == i) {
            i = end + 1;
            continue;
        }
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            (TokKind::Punct, ";") => {
                held.retain(|h| !(h.temp && h.depth == depth));
            }
            // `expr[…]` indexing while holding: panic-capable.
            (TokKind::Punct, "[") if depth_mode == Depth::Transitive && !held.is_empty() => {
                let p = &toks[i - 1];
                let indexing = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || p.text == ")"
                    || p.text == "]";
                if indexing {
                    findings.push(panic_finding(path, t.line, "indexing", &held));
                }
            }
            // `drop(g)` releases guard g.
            (TokKind::Ident, "drop") if toks.get(i + 1).is_some_and(|n| n.text == "(") => {
                if let Some(gv) = toks.get(i + 2) {
                    held.retain(|h| h.guard.as_deref() != Some(gv.text.as_str()));
                }
            }
            (TokKind::Ident, name) => {
                // `panic!`-family while holding.
                if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                    && toks.get(i + 1).is_some_and(|n| n.text == "!")
                {
                    if depth_mode == Depth::Transitive && !held.is_empty() {
                        findings.push(panic_finding(path, t.line, &format!("`{name}!`"), &held));
                    }
                    i += 2;
                    continue;
                }
                let is_call = toks.get(i + 1).is_some_and(|n| n.text == "(");
                if !is_call || is_keyword(name) || (i >= 1 && toks[i - 1].text == "fn") {
                    i += 1;
                    continue;
                }
                // `cond.wait(g)` keeps g held (re-acquired on return) —
                // the canonical pattern, never a finding.
                if name == "wait" || name == "wait_while" || name == "wait_timeout" {
                    i += 1;
                    continue;
                }
                // `.unwrap()`/`.expect()` while holding — unless it is
                // poison plumbing on the `lock()`/`wait()` itself.
                if matches!(name, "unwrap" | "expect") && i >= 1 && toks[i - 1].text == "." {
                    if depth_mode == Depth::Transitive
                        && !held.is_empty()
                        && !is_poison_plumbing(toks, i)
                    {
                        findings.push(panic_finding(path, t.line, &format!(".{name}()"), &held));
                    }
                    i += 1;
                    continue;
                }
                // `recv.lock()` — a direct acquisition when the
                // receiver's last path segment is a known mutex.
                if name == "lock"
                    && i >= 2
                    && toks[i - 1].text == "."
                    && g.mutexes.contains(toks[i - 2].text.as_str())
                {
                    let mutex = toks[i - 2].text.clone();
                    acquire(
                        path, toks, def.body.0, i, depth, &mutex, true, None, &mut held, edges,
                        findings,
                    );
                    i += 1;
                    continue;
                }
                if !held.is_empty() && is_blocking_call(name) {
                    let held_names: Vec<&str> = held.iter().map(|h| h.mutex.as_str()).collect();
                    findings.push(Finding::new(
                        "lock-order",
                        Severity::Deny,
                        path,
                        t.line,
                        format!(
                            "blocking call `{name}(…)` while holding lock(s) \
                             {held_names:?}; release the guard first (or allow \
                             with the reason the call cannot block)"
                        ),
                    ));
                }
                // Resolved call: propagate callee facts. The blocking/
                // panic checks use the held set from *before* this
                // call's own propagated acquisitions — what the callee
                // does internally under its own locks is scanned in the
                // callee; the caller is on the hook only for locks it
                // already held at the call.
                if let Some(&si) = site_at.get(&i) {
                    let site = &g.calls[d][si];
                    let held_before: Vec<String> = held.iter().map(|h| h.mutex.clone()).collect();
                    let mut acquires: BTreeSet<&str> = BTreeSet::new();
                    let mut returns_guard = false;
                    for &c in &site.callees {
                        let set = match depth_mode {
                            Depth::OneLevel => &g.direct_acquires[c],
                            Depth::Transitive => &g.summaries[c].acquires,
                        };
                        acquires.extend(set.iter().map(|s| s.as_str()));
                        returns_guard |= g.defs[c].returns_guard;
                    }
                    // `let x = self.lock().field.clone();` — the guard
                    // is consumed inside the statement; the `let` binds
                    // the chained result, so the hold ends at the `;`.
                    let binds_guard = returns_guard && !call_is_chained(toks, i);
                    let held_len = held.len();
                    for m in acquires {
                        let mutex = m.to_string();
                        acquire(
                            path,
                            toks,
                            def.body.0,
                            i,
                            depth,
                            &mutex,
                            binds_guard,
                            Some(name),
                            &mut held,
                            edges,
                            findings,
                        );
                    }
                    // A callee that does not hand back a guard released
                    // every lock it took before returning: the edges and
                    // re-entry checks above are the whole story, and the
                    // caller's held set reverts to what it was.
                    if !returns_guard {
                        held.truncate(held_len);
                    }
                    if depth_mode == Depth::Transitive && !held_before.is_empty() {
                        let held_names = &held_before;
                        if !is_blocking_call(name) {
                            if let Some(&c) = site
                                .callees
                                .iter()
                                .find(|&&c| g.summaries[c].blocks.is_some())
                            {
                                let chain = g.render_chain(c, |s| s.blocks.as_ref());
                                findings.push(Finding::new(
                                    "lock-order",
                                    Severity::Deny,
                                    path,
                                    t.line,
                                    format!(
                                        "call to `{name}(…)` reaches a blocking operation \
                                         while holding lock(s) {held_names:?} ({chain}); \
                                         release the guard first"
                                    ),
                                ));
                            }
                        }
                        if let Some(&c) = site
                            .callees
                            .iter()
                            .find(|&&c| g.summaries[c].panics.is_some())
                        {
                            let chain = g.render_chain(c, |s| s.panics.as_ref());
                            findings.push(Finding::new(
                                "panic-path",
                                Severity::Deny,
                                path,
                                t.line,
                                format!(
                                    "call to `{name}(…)` may panic while holding lock(s) \
                                     {held_names:?} ({chain}); a panic here poisons the \
                                     mutex for every other thread"
                                ),
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// One `panic-path` finding at a direct site.
fn panic_finding(path: &str, line: u32, what: &str, held: &[Held]) -> Finding {
    let held_names: Vec<&str> = held.iter().map(|h| h.mutex.as_str()).collect();
    Finding::new(
        "panic-path",
        Severity::Deny,
        path,
        line,
        format!(
            "{what} while holding lock(s) {held_names:?}; a panic here poisons \
             the mutex for every other thread — return an error or shed instead"
        ),
    )
}

/// Records one acquisition at token index `i`: emits hold-order edges
/// against everything currently held, then pushes the new guard.
/// Propagated acquisitions (`via` = callee name) bind to a `let` only
/// when the callee returns a guard type; otherwise the callee released
/// the lock before returning and the hold ends at the statement.
#[allow(clippy::too_many_arguments)]
fn acquire(
    path: &str,
    toks: &[Tok],
    body_start: usize,
    i: usize,
    depth: i32,
    mutex: &str,
    holds_on: bool,
    via: Option<&str>,
    held: &mut Vec<Held>,
    edges: &mut Edges,
    findings: &mut Vec<Finding>,
) {
    let line = toks[i].line;
    for h in held.iter() {
        if h.mutex == mutex {
            let how = via.map_or(String::new(), |v| format!(" (via call to `{v}(…)`)"));
            findings.push(Finding::new(
                "lock-order",
                Severity::Deny,
                path,
                line,
                format!(
                    "re-acquiring `{mutex}` while already held{how}: \
                     std::sync::Mutex is non-reentrant; this deadlocks"
                ),
            ));
        } else {
            edges
                .entry((h.mutex.clone(), mutex.to_string()))
                .or_insert_with(|| (path.to_string(), line));
        }
    }
    let guard = if holds_on {
        guard_binding(toks, body_start, i)
    } else {
        None
    };
    let temp = guard.is_none();
    held.push(Held {
        mutex: mutex.to_string(),
        guard,
        depth,
        temp,
    });
}

/// True when the call whose name is at token `i` has its return value
/// method-chained (`self.lock().latencies_ms…`): a returned guard is
/// then a statement temporary, not the `let` binding's value. Poison
/// plumbing (`.unwrap()` / `.expect(…)`) is transparent — it unwraps
/// the guard rather than consuming it.
fn call_is_chained(toks: &[Tok], i: usize) -> bool {
    let mut j = i + 1;
    if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
        return false;
    }
    loop {
        // Walk to the matching close paren of the call at `j`.
        let mut depth = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() {
            return false;
        }
        // Skip transparent `.unwrap()` / `.expect(…)` links.
        if toks.get(j + 1).map(|t| t.text.as_str()) == Some(".")
            && toks
                .get(j + 2)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
            && toks.get(j + 3).map(|t| t.text.as_str()) == Some("(")
        {
            j += 3;
            continue;
        }
        return toks.get(j + 1).map(|t| t.text.as_str()) == Some(".");
    }
}

/// Finds the `let [mut] g =` binding a `.lock()` at token `i` flows
/// into, scanning back to the start of the statement (never past the
/// body's opening brace).
fn guard_binding(toks: &[Tok], body_start: usize, i: usize) -> Option<String> {
    let mut j = i;
    while j > body_start {
        let t = &toks[j - 1];
        if t.text == ";" || t.text == "{" || t.text == "}" {
            return None;
        }
        if t.text == "let" {
            // `let g = …` or `let mut g = …` or `let (a, b) = …` (a
            // destructuring bind — treat the tuple as unnamed: temp).
            let g = toks.get(j).filter(|t| t.kind == TokKind::Ident)?;
            if g.text == "mut" {
                return toks.get(j + 1).map(|t| t.text.clone());
            }
            return Some(g.text.clone());
        }
        j -= 1;
    }
    None
}

/// DFS cycle detection over the acquisition-order edges; each cycle is
/// reported once, anchored at its lexicographically first node.
fn find_cycles(edges: &Edges) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut findings = Vec::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        // Find a path start → … → start.
        let mut stack = vec![(start, vec![start])];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, trail)) = stack.pop() {
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    // Report only at the cycle's smallest node, so each
                    // cycle appears once.
                    if trail.iter().all(|n| *n >= start) {
                        let (path, line) = &edges[&(node.to_string(), next.to_string())];
                        let mut cycle = trail.clone();
                        cycle.push(start);
                        findings.push(Finding::new(
                            "lock-order",
                            Severity::Deny,
                            path,
                            *line,
                            format!(
                                "lock-order cycle {}: some interleaving deadlocks; \
                                 impose one global acquisition order",
                                cycle.join(" -> ")
                            ),
                        ));
                    }
                } else if seen.insert(next) {
                    let mut t = trail.clone();
                    t.push(next);
                    stack.push((next, t));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::FileMeta;
    use crate::lexer::{lex, Lexed};

    fn run_files(files: &[(String, Lexed)], depth: Depth) -> Vec<Finding> {
        let g = CallGraph::build(
            files
                .iter()
                .map(|(p, l)| FileMeta {
                    path: p,
                    crate_key: "x",
                    lexed: l,
                })
                .collect(),
        );
        analyze_graph(&g, depth)
    }

    fn run(src: &str) -> Vec<Finding> {
        run_files(
            &[("crates/x/src/lib.rs".to_string(), lex(src))],
            Depth::Transitive,
        )
    }

    #[test]
    fn opposite_order_is_a_cycle() {
        let src = "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
            fn g(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }
        ";
        let f = run(src);
        assert!(
            f.iter()
                .any(|x| x.lint == "lock-order" && x.message.contains("cycle")),
            "{f:?}"
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            struct S { a: Mutex<u32>, b: Mutex<u32> }
            fn f(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
            fn g(s: &S) { let ga = s.a.lock(); let gb = s.b.lock(); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn send_under_lock_is_flagged_and_scoped_release_is_not() {
        let src = "
            struct S { state: Mutex<u32> }
            fn bad(s: &S, tx: &Sender<u32>) { let g = s.state.lock(); tx.send(1); }
            fn good(s: &S, tx: &Sender<u32>) { { let g = s.state.lock(); } tx.send(1); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("send"));
    }

    #[test]
    fn drop_releases_and_temp_guards_end_at_statement() {
        let src = "
            struct S { state: Mutex<u32> }
            fn f(s: &S, tx: &Sender<u32>) { let g = s.state.lock(); drop(g); tx.send(1); }
            fn h(s: &S, tx: &Sender<u32>) { s.state.lock().x = 1; tx.send(1); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn wrapper_fn_propagates() {
        let src = "
            struct S { state: Mutex<u32> }
            fn lock_state(s: &S) -> MutexGuard<u32> { s.state.lock() }
            fn f(s: &S, tx: &Sender<u32>) { let g = lock_state(s); tx.send(1); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("state"), "{f:?}");
    }

    #[test]
    fn solve_under_lock_is_flagged() {
        let src = "
            struct S { state: Mutex<u32> }
            fn f(s: &S) { let g = s.state.lock(); let r = solve_model(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("solve_model"));
    }

    #[test]
    fn sequential_reacquire_in_callee_does_not_poison_callers() {
        // The callee locks, releases (block close), and locks again —
        // that is two acquisitions in sequence, not a nested re-entry,
        // so calling it must not report a deadlock.
        let src = "
            struct S { state: Mutex<u32> }
            fn worker(s: &S) { { let g = s.state.lock(); } let g2 = s.state.lock(); }
            fn spawn_it(s: &S) { worker(s); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn condvar_wait_keeps_guard_without_finding() {
        let src = "
            struct S { state: Mutex<u32>, cond: Condvar }
            fn f(s: &S) { let mut g = s.state.lock(); g = s.cond.wait(g); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    /// Lock order split across three call levels and two files: the
    /// one-level baseline cannot see that `entry_left` transitively
    /// acquires `b` under `a`, so only the fixpoint engine reports the
    /// a→b→a cycle.
    fn deep_cycle_files() -> Vec<(String, Lexed)> {
        vec![
            (
                "crates/x/src/left.rs".to_string(),
                lex("
                    struct S { a: Mutex<u32>, b: Mutex<u32> }
                    fn entry_left(s: &S) { let ga = s.a.lock(); step1(s); }
                    fn step1(s: &S) { step2(s); }
                "),
            ),
            (
                "crates/x/src/right.rs".to_string(),
                lex("
                    fn step2(s: &S) { let gb = s.b.lock(); }
                    fn entry_right(s: &S) { let gb = s.b.lock(); let ga = s.a.lock(); }
                "),
            ),
        ]
    }

    #[test]
    fn three_deep_cross_file_cycle_is_caught_transitively() {
        let f = run_files(&deep_cycle_files(), Depth::Transitive);
        assert!(
            f.iter()
                .any(|x| x.lint == "lock-order" && x.message.contains("cycle")),
            "{f:?}"
        );
    }

    #[test]
    fn one_level_propagation_misses_the_deep_cycle() {
        let f = run_files(&deep_cycle_files(), Depth::OneLevel);
        assert!(
            !f.iter().any(|x| x.message.contains("cycle")),
            "one-level baseline unexpectedly caught the deep cycle: {f:?}"
        );
    }

    #[test]
    fn unwrap_under_guard_is_a_panic_path() {
        let src = "
            struct S { state: Mutex<State> }
            fn f(s: &S) { let g = s.state.lock().unwrap(); g.map.get(&1).unwrap(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "panic-path");
        assert!(f[0].message.contains(".unwrap()"), "{f:?}");
    }

    #[test]
    fn poison_plumbing_is_not_a_panic_path() {
        let src = "
            struct S { state: Mutex<State>, cond: Condvar }
            fn f(s: &S) { let mut g = s.state.lock().expect(\"poisoned\"); g = s.cond.wait(g).expect(\"poisoned\"); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn callee_panic_fires_at_the_guarded_call_site_with_chain() {
        let src = "
            struct S { state: Mutex<State> }
            fn helper(v: &[u32]) -> u32 { v[0] }
            fn mid(v: &[u32]) -> u32 { helper(v) }
            fn f(s: &S, v: &[u32]) { let g = s.state.lock(); mid(v); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "panic-path");
        assert!(f[0].message.contains("mid"), "{f:?}");
        assert!(f[0].message.contains("helper"), "{f:?}");
    }

    #[test]
    fn panic_after_release_is_clean() {
        let src = "
            struct S { state: Mutex<State> }
            fn f(s: &S, v: &[u32]) { { let g = s.state.lock(); } v.first().unwrap(); }
        ";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn transitive_blocking_fires_through_a_wrapper() {
        let src = "
            struct S { state: Mutex<u32> }
            fn notify(tx: &Sender<u32>) { tx.send(1); }
            fn f(s: &S, tx: &Sender<u32>) { let g = s.state.lock(); notify(tx); }
        ";
        let f = run(src);
        assert!(
            f.iter().any(|x| x.lint == "lock-order"
                && x.message.contains("reaches a blocking operation")
                && x.message.contains("notify")),
            "{f:?}"
        );
    }
}
