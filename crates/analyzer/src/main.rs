#![forbid(unsafe_code)]
//! `llp-analyzer` — the CLI over [`llp_analyzer`].
//!
//! ```text
//! cargo run -p llp_analyzer -- --check            # CI gate: exit 1 on deny findings
//! cargo run -p llp_analyzer -- --out ANALYZER.json
//! cargo run -p llp_analyzer -- --root /path/to/ws --check --out ANALYZER.json
//! ```
//!
//! Human-readable findings go to stdout; the machine-readable report
//! (`report::AnalyzerReport`) is written to `--out` via the vendored
//! serde. Exit codes: 0 clean (warn findings permitted), 1 deny findings
//! present (`--check`), 2 usage error.

use llp_analyzer::analyze_workspace;
use llp_analyzer::policy::find_workspace_root;
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage("--out needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "llp-analyzer: workspace determinism-and-invariant lints\n\
                     \n\
                     USAGE: llp-analyzer [--check] [--out FILE] [--root DIR]\n\
                     \n\
                     --check   exit 1 when any deny-tier finding survives\n\
                     --out     write the ANALYZER.json report to FILE\n\
                     --root    workspace root (default: walk up from cwd)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root(&PathBuf::from(".")) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let r = &analysis.report;

    for f in &r.findings {
        println!(
            "{}:{}: [{}] {}: {}",
            f.path, f.line, f.severity, f.lint, f.message
        );
    }
    println!(
        "llp-analyzer: {} files, {} deny, {} warn, {} suppressed by reasoned allows",
        r.files_scanned, r.deny, r.warn, r.suppressed
    );

    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, r.to_json()) {
            eprintln!("error: write {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!("llp-analyzer: report written to {}", path.display());
    }

    if check && r.deny > 0 {
        eprintln!("llp-analyzer: --check failed ({} deny finding(s))", r.deny);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg} (try --help)");
    ExitCode::from(2)
}
