#![forbid(unsafe_code)]
//! `llp-analyzer` — the CLI over [`llp_analyzer`].
//!
//! ```text
//! cargo run -p llp_analyzer -- --check            # CI gate: exit 1 on deny findings
//! cargo run -p llp_analyzer -- --out ANALYZER.json
//! cargo run -p llp_analyzer -- --check --baseline ANALYZER.json   # PR gate: new deny only
//! cargo run -p llp_analyzer -- --root /path/to/ws --check --out ANALYZER.json
//! ```
//!
//! Human-readable findings go to stdout; the machine-readable report
//! (`report::AnalyzerReport`, schema v2 with per-finding fingerprints)
//! is written to `--out` via the vendored serde — atomically, through a
//! temp file in the same directory plus rename, so an interrupted run
//! can never leave a truncated artifact for CI to upload. With
//! `--baseline FILE`, findings are diffed against a previously-written
//! report by fingerprint and `--check` gates on **new** deny findings
//! only. Exit codes: 0 clean (warn findings permitted), 1 deny findings
//! present (`--check`), 2 usage error.

use llp_analyzer::analyze_workspace;
use llp_analyzer::policy::find_workspace_root;
use llp_analyzer::report::AnalyzerReport;
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Writes `contents` to `path` atomically: temp file in the same
/// directory (rename across filesystems is not atomic), then rename.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = dir.map_or_else(PathBuf::new, Path::to_path_buf);
    let base = path.file_name().map_or_else(
        || "ANALYZER.json".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    tmp.push(format!(".{base}.tmp-{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn main() -> ExitCode {
    let mut check = false;
    let mut out: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match args.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => return usage("--out needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage("--baseline needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "llp-analyzer: workspace determinism-and-invariant lints\n\
                     \n\
                     USAGE: llp-analyzer [--check] [--out FILE] [--baseline FILE] [--root DIR]\n\
                     \n\
                     --check     exit 1 when any deny-tier finding survives\n\
                     --out       write the ANALYZER.json report to FILE (atomic)\n\
                     --baseline  diff against a previous ANALYZER.json by finding\n\
                     \u{20}           fingerprint; with --check, gate on NEW deny findings only\n\
                     --root      workspace root (default: walk up from cwd)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }

    let root = match root {
        Some(r) => r,
        None => match find_workspace_root(&PathBuf::from(".")) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let r = &analysis.report;

    for f in &r.findings {
        println!(
            "{}:{}: [{}] {}: {}",
            f.path, f.line, f.severity, f.lint, f.message
        );
    }
    println!(
        "llp-analyzer: {} files, {} deny, {} warn, {} suppressed by reasoned allows",
        r.files_scanned, r.deny, r.warn, r.suppressed
    );

    // Baseline diff: the PR-gate mode. Known findings stay visible
    // above; the gate narrows to fingerprints absent from the baseline.
    let mut new_deny: Option<u64> = None;
    if let Some(bpath) = baseline {
        let base = match std::fs::read_to_string(&bpath)
            .map_err(|e| format!("read {bpath:?}: {e}"))
            .and_then(|s| AnalyzerReport::load_baseline(&s))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        let fresh = r.new_versus(&base);
        for f in &fresh {
            println!(
                "NEW {}:{}: [{}] {}: {}",
                f.path, f.line, f.severity, f.lint, f.message
            );
        }
        let deny = fresh.iter().filter(|f| f.is_deny()).count() as u64;
        println!(
            "llp-analyzer: {} new finding(s) vs baseline {} ({} known)",
            fresh.len(),
            bpath.display(),
            r.findings.len() - fresh.len()
        );
        new_deny = Some(deny);
    }

    if let Some(path) = out {
        if let Err(e) = write_atomic(&path, &r.to_json()) {
            eprintln!("error: write {path:?}: {e}");
            return ExitCode::from(2);
        }
        println!("llp-analyzer: report written to {}", path.display());
    }

    if check {
        match new_deny {
            Some(0) => {}
            Some(n) => {
                eprintln!("llp-analyzer: --check failed ({n} NEW deny finding(s) vs baseline)");
                return ExitCode::FAILURE;
            }
            None if r.deny > 0 => {
                eprintln!("llp-analyzer: --check failed ({} deny finding(s))", r.deny);
                return ExitCode::FAILURE;
            }
            None => {}
        }
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg} (try --help)");
    ExitCode::from(2)
}
