//! The token-level lint catalog.
//!
//! Every lint here is a scan over the flat token stream of one file (the
//! lock-order analysis, which needs a whole-crate view, lives in
//! `lockorder`). Lints fire on *identifier tokens in path-shaped
//! context*, never on strings or comments — `"HashMap"` in a help text
//! (or in this very file's pattern tables) is inert.

use crate::lexer::{matches_seq, Lexed, Tok, TokKind};
use crate::policy::{Class, ENV_OWNER, KERNEL_FILES};
use crate::report::{Finding, Severity};

/// Names of every lint the analyzer knows, for allow-annotation
/// validation (`allow(typo)` is itself a finding).
pub const LINT_NAMES: &[&str] = &[
    "nondeterministic-collections",
    "wall-clock",
    "env-read",
    "unseeded-rng",
    "lock-order",
    "panic-path",
    "fp-kernel-purity",
    "hot-loop-alloc",
    "missing-forbid-unsafe",
    "unused-allow",
    "malformed-allow",
];

/// Runs every token-level lint applicable to `class` over one file.
pub fn scan_file(path: &str, lexed: &Lexed, class: Class, crate_key: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if class == Class::VendorExempt {
        return out;
    }
    let toks = &lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            // ---- nondeterministic-collections -------------------------
            // Any mention (import, type position, constructor) counts:
            // iteration order of std's hashed containers is seeded per
            // process, so even a "read-only" use is one refactor away
            // from an order-dependent output.
            "HashMap" | "HashSet" if class == Class::Deterministic => {
                out.push(Finding::new(
                    "nondeterministic-collections",
                    Severity::Deny,
                    path,
                    t.line,
                    format!(
                        "`{}` in a deterministic crate: iteration order is \
                         process-seeded; use BTreeMap/BTreeSet or a Vec keyed \
                         by index",
                        t.text
                    ),
                ));
            }
            // ---- wall-clock -------------------------------------------
            // `Instant::now()` / `SystemTime::now()` — the actual clock
            // reads, not the type imports. Applies to Timing crates too:
            // metering sites are legitimate there but must each carry a
            // reasoned allow, so a new clock dependency is a diff the
            // gate sees.
            "Instant" | "SystemTime" if matches_seq(toks, i + 1, &["::", "now"]) => {
                out.push(Finding::new(
                    "wall-clock",
                    Severity::Deny,
                    path,
                    t.line,
                    format!(
                        "`{}::now()` reads the wall clock; solver results and \
                         meters must be time-independent (annotate metering \
                         sites with a reasoned allow)",
                        t.text
                    ),
                ));
            }
            // ---- env-read ---------------------------------------------
            // `env::var` / `var_os` / `vars` anywhere but the documented
            // precedence owner (vendor/llp_par): ambient configuration is
            // a hidden input that breaks replay determinism.
            "env"
                if crate_key != ENV_OWNER
                    && (matches_seq(toks, i + 1, &["::", "var"])
                        || matches_seq(toks, i + 1, &["::", "var_os"])
                        || matches_seq(toks, i + 1, &["::", "vars"])) =>
            {
                out.push(Finding::new(
                    "env-read",
                    Severity::Deny,
                    path,
                    t.line,
                    "environment read outside vendor/llp_par: LLP_THREADS \
                     precedence (and env input generally) is owned by llp_par"
                        .to_string(),
                ));
            }
            // ---- unseeded-rng -----------------------------------------
            // RNG construction that does not flow from an explicit seed
            // argument. The workspace's own `rand` only offers these by
            // name, so naming one is constructing one.
            "ThreadRng" | "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" => {
                out.push(Finding::new(
                    "unseeded-rng",
                    Severity::Deny,
                    path,
                    t.line,
                    format!(
                        "`{}` constructs an entropy-seeded RNG; all randomness \
                         must derive from an explicit seed argument \
                         (StdRng::seed_from_u64 / from_seed)",
                        t.text
                    ),
                ));
            }
            _ => {}
        }
    }
    if KERNEL_FILES.contains(&path) {
        out.extend(scan_hot_loops(path, toks));
    }
    out
}

/// Checks a crate-root file for `#![forbid(unsafe_code)]`.
///
/// Token-shaped, not substring-shaped: a doc comment *describing* the
/// attribute does not satisfy the lint.
pub fn check_forbid_unsafe(path: &str, lexed: &Lexed) -> Option<Finding> {
    let toks = &lexed.toks;
    let found = (0..toks.len()).any(|i| {
        matches_seq(toks, i, &["#", "!"])
            && matches_seq(toks, i + 2, &["["])
            && matches_seq(toks, i + 3, &["forbid", "(", "unsafe_code", ")", "]"])
    });
    if found {
        None
    } else {
        Some(Finding::new(
            "missing-forbid-unsafe",
            Severity::Deny,
            path,
            1,
            "crate root lacks #![forbid(unsafe_code)]; the workspace is \
             unsafe-free and stays that way by construction",
        ))
    }
}

/// Allocation-shaped calls the hot-loop lint flags inside loop bodies.
const LOOP_ALLOC_METHODS: &[&str] = &["collect", "clone", "to_vec", "to_owned"];

/// Deny-tier scan of loop bodies in the violation-scan kernels: each hit
/// is a per-iteration allocation. The scratch arenas (`SolveScratch`,
/// `ConstraintColumns`) hoisted every historical hit, so any new finding
/// is a regression and fails CI. Tracks `for`/`while`/`loop` bodies by
/// brace depth (closures
/// inside a loop body count as inside the loop — a `map` callback runs
/// per element, which is exactly the allocation pressure in question).
fn scan_hot_loops(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    // Brace depths at which a loop body opened; non-empty = in a loop.
    let mut loop_depths: Vec<i32> = Vec::new();
    // A loop keyword was seen and its body's `{` is pending.
    let mut pending_loop = false;
    for i in 0..toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "for" | "while" | "loop") => {
                // `for` in `impl Trait for Type` is preceded by a type
                // ident/`>`/`)`; a loop's `for` follows `{`, `;`, `}` or
                // starts a body. Cheap disambiguation: an `impl` earlier
                // on the same statement. Good enough for kernel files,
                // which contain no trait impls inside functions.
                let is_impl_for = t.text == "for"
                    && i > 0
                    && matches!(toks[i - 1].kind, TokKind::Ident | TokKind::Punct if toks[i - 1].text != "{" && toks[i - 1].text != ";" && toks[i - 1].text != "}" && toks[i - 1].text != "(");
                if !is_impl_for {
                    pending_loop = true;
                }
            }
            (TokKind::Punct, "{") => {
                depth += 1;
                if pending_loop {
                    loop_depths.push(depth);
                    pending_loop = false;
                }
            }
            (TokKind::Punct, "}") => {
                if loop_depths.last() == Some(&depth) {
                    loop_depths.pop();
                }
                depth -= 1;
            }
            (TokKind::Ident, "new") if !loop_depths.is_empty() => {
                // `Vec::new` / `String::new` / `Box::new` in a loop body.
                let ctor = i >= 2
                    && toks[i - 1].text == "::"
                    && matches!(
                        toks[i - 2].text.as_str(),
                        "Vec" | "String" | "Box" | "VecDeque"
                    );
                if ctor {
                    out.push(Finding::new(
                        "hot-loop-alloc",
                        Severity::Deny,
                        path,
                        t.line,
                        format!(
                            "`{}::new` inside a kernel loop body allocates per \
                             iteration; hoist into a reusable scratch buffer",
                            toks[i - 2].text
                        ),
                    ));
                }
            }
            (TokKind::Ident, "vec")
                if !loop_depths.is_empty() && matches_seq(toks, i + 1, &["!"]) =>
            {
                out.push(Finding::new(
                    "hot-loop-alloc",
                    Severity::Deny,
                    path,
                    t.line,
                    "`vec![…]` inside a kernel loop body allocates per \
                     iteration; hoist into a reusable scratch buffer",
                ));
            }
            (TokKind::Ident, m) if !loop_depths.is_empty() && LOOP_ALLOC_METHODS.contains(&m) => {
                let method_call =
                    i >= 1 && toks[i - 1].text == "." && matches_seq(toks, i + 1, &["("]);
                if method_call {
                    out.push(Finding::new(
                        "hot-loop-alloc",
                        Severity::Deny,
                        path,
                        t.line,
                        format!(
                            "`.{m}()` inside a kernel loop body allocates per \
                             iteration; borrow or reuse a scratch buffer"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lints_of(src: &str, class: Class, key: &str) -> Vec<String> {
        scan_file("crates/x/src/lib.rs", &lex(src), class, key)
            .into_iter()
            .map(|f| f.lint)
            .collect()
    }

    #[test]
    fn collections_fire_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;";
        assert_eq!(
            lints_of(src, Class::Deterministic, "core"),
            vec!["nondeterministic-collections"]
        );
        assert!(lints_of(src, Class::Timing, "service").is_empty());
    }

    #[test]
    fn wall_clock_fires_on_reads_not_imports() {
        assert!(lints_of("use std::time::Instant;", Class::Timing, "bench").is_empty());
        assert_eq!(
            lints_of("let t = Instant::now();", Class::Timing, "bench"),
            vec!["wall-clock"]
        );
        assert_eq!(
            lints_of(
                "let t = std::time::SystemTime::now();",
                Class::Deterministic,
                "core"
            ),
            vec!["wall-clock"]
        );
    }

    #[test]
    fn env_read_exempts_the_owner() {
        let src = r#"let v = std::env::var("LLP_THREADS");"#;
        assert_eq!(
            lints_of(src, Class::Deterministic, "core"),
            vec!["env-read"]
        );
        assert!(lints_of(src, Class::Deterministic, "llp_par").is_empty());
    }

    #[test]
    fn strings_do_not_fire() {
        let src = r#"eprintln!("set LLP_THREADS; HashMap; Instant::now");"#;
        assert!(lints_of(src, Class::Deterministic, "core").is_empty());
    }

    #[test]
    fn unseeded_rng_fires_on_entropy_constructors() {
        assert_eq!(
            lints_of(
                "let mut r = ThreadRng::default();",
                Class::Timing,
                "service"
            ),
            vec!["unseeded-rng"]
        );
        assert!(lints_of(
            "let mut r = StdRng::seed_from_u64(7);",
            Class::Deterministic,
            "core"
        )
        .is_empty());
    }

    #[test]
    fn forbid_unsafe_is_token_shaped() {
        assert!(check_forbid_unsafe("x", &lex("#![forbid(unsafe_code)]\nfn main() {}")).is_none());
        // A comment describing it does not count.
        assert!(
            check_forbid_unsafe("x", &lex("// #![forbid(unsafe_code)]\nfn main() {}")).is_some()
        );
    }

    #[test]
    fn hot_loop_alloc_flags_loop_bodies_only() {
        let src = "fn k(xs: &[u32]) { let base = xs.to_vec(); for x in xs { let v = x.clone(); } }";
        let hits = scan_hot_loops("crates/core/src/lptype.rs", &lex(src).toks);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("clone"));
    }
}
