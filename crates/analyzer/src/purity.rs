//! `fp-kernel-purity`: the FP kernels must stay referentially pure
//! through their whole call tree.
//!
//! The token-level lints already deny direct impurities (hashed
//! collections, wall-clock, env reads, unseeded RNG) *inside* kernel
//! files — but a kernel that calls a helper in another file which reads
//! the clock is just as nondeterministic, and the per-file pass cannot
//! see it. This pass is the static twin of the SoA≡AoS differential
//! suites: for every function defined in a [`KERNEL_FILES`] path, the
//! call-graph summary's *inherited* impurity set must be empty.
//!
//! Only call-inherited facts ([`Source::Via`]) fire here, at the call
//! site that imports the impurity and with the full witness chain in
//! the message; a direct impurity in the kernel file itself is already
//! a `nondeterministic-collections`/`wall-clock`/… finding and is not
//! double-reported. Reads of `LLP_THREADS` by the documented env owner
//! (`vendor/llp_par`) are exempt at the fact-collection layer: the
//! parallelism contract makes results bit-identical at any thread
//! count, so reaching them does not make a kernel impure.

use crate::callgraph::{CallGraph, Source};
use crate::policy::KERNEL_FILES;
use crate::report::{Finding, Severity};

/// Human phrasing per impurity kind, for finding messages.
fn describe(kind: &str) -> &'static str {
    match kind {
        "wall-clock" => "reads the wall clock",
        "env-read" => "reads the environment",
        "unseeded-rng" => "draws OS entropy",
        "hash-collection" => "touches a process-seeded hash collection",
        _ => "is impure",
    }
}

/// Fires `fp-kernel-purity` for every kernel-file function whose
/// transitive call tree inherits an impurity.
pub fn analyze_graph(g: &CallGraph<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for d in 0..g.defs.len() {
        let path = g.files[g.defs[d].file].path;
        if !KERNEL_FILES.contains(&path) {
            continue;
        }
        for (kind, src) in &g.summaries[d].impure {
            let Source::Via { line, .. } = src else {
                continue; // direct sites are the per-file lints' job
            };
            let chain = g.render_chain(d, |s| s.impure.get(kind));
            findings.push(Finding::new(
                "fp-kernel-purity",
                Severity::Deny,
                path,
                *line,
                format!(
                    "kernel fn `{}` transitively {} ({chain}); kernels and \
                     everything they call must be deterministic in their \
                     inputs and seed",
                    g.defs[d].name,
                    describe(kind),
                ),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::FileMeta;
    use crate::lexer::{lex, Lexed};

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let lexed: Vec<(String, Lexed)> =
            files.iter().map(|(p, s)| (p.to_string(), lex(s))).collect();
        let g = CallGraph::build(
            lexed
                .iter()
                .map(|(p, l)| FileMeta {
                    path: p,
                    crate_key: "core",
                    lexed: l,
                })
                .collect(),
        );
        analyze_graph(&g)
    }

    #[test]
    fn inherited_clock_read_fires_with_chain() {
        let f = run(&[
            (
                "crates/core/src/clarkson.rs",
                "fn kernel(v: &[f64]) -> f64 { helper(v) }",
            ),
            (
                "crates/core/src/util.rs",
                "fn helper(v: &[f64]) -> f64 { let t = Instant::now(); 0.0 }",
            ),
        ]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "fp-kernel-purity");
        assert_eq!(f[0].path, "crates/core/src/clarkson.rs");
        assert!(f[0].message.contains("helper"), "{f:?}");
        assert!(f[0].message.contains("wall clock"), "{f:?}");
    }

    #[test]
    fn direct_sites_are_not_double_reported() {
        // A direct clock read inside the kernel file is the per-file
        // wall-clock lint's finding, not a purity finding.
        let f = run(&[(
            "crates/core/src/clarkson.rs",
            "fn kernel() -> f64 { let t = Instant::now(); 0.0 }",
        )]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pure_call_tree_is_clean() {
        let f = run(&[
            (
                "crates/core/src/clarkson.rs",
                "fn kernel(v: &[f64]) -> f64 { helper(v) }",
            ),
            (
                "crates/core/src/util.rs",
                "fn helper(v: &[f64]) -> f64 { v.iter().sum() }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn non_kernel_files_are_not_checked() {
        let f = run(&[
            (
                "crates/core/src/other.rs",
                "fn free(v: &[f64]) -> f64 { helper(v) }",
            ),
            (
                "crates/core/src/util.rs",
                "fn helper(v: &[f64]) -> f64 { let t = Instant::now(); 0.0 }",
            ),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }
}
