//! Findings and the machine-readable `ANALYZER.json` report.
//!
//! Same pattern as `llp_bench::report`: plain named-field structs
//! serialized through the vendored serde derive, shortest-round-trip
//! floats (none here — lines are integers), and a `validate`-style
//! consumer (`--check`) that refuses what it does not understand.
//!
//! Schema v2 adds a stable **fingerprint** per finding —
//! `fnv1a64(lint, path, message, occurrence)` in hex — and with it a
//! baseline workflow: `--baseline <file>` diffs the current report
//! against a previously-written `ANALYZER.json` by fingerprint set, so
//! CI can gate on *new* findings while the triaged set stays visible.
//! The line number is deliberately **not** hashed (and witness chains
//! keep line numbers out of messages): inserting a line above a finding
//! must not make it "new". The occurrence index disambiguates repeats
//! of the same message in one file, so adding a second identical
//! violation is still a new fingerprint.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Bumped whenever a [`Finding`]/[`AnalyzerReport`] field changes
/// meaning; consumers refuse unknown versions.
pub const SCHEMA_VERSION: u64 = 2;

/// Finding severity tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails `--check` (exit 1) — the CI gate.
    Deny,
    /// Reported and serialized, never fails the gate.
    Warn,
}

impl Severity {
    /// Wire name (`"deny"` / `"warn"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// 64-bit FNV-1a — the same hash family `llp_service` fingerprints
/// requests with; offline and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One lint finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Lint name (kebab-case, the allow-annotation key).
    pub lint: String,
    /// `"deny"` or `"warn"`.
    pub severity: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based source line.
    pub line: u64,
    /// Human-readable description of the violation.
    pub message: String,
    /// Stable identity for baseline diffing: hex
    /// `fnv1a64(lint ␟ path ␟ message ␟ occurrence)`. Filled by
    /// [`AnalyzerReport::new`] (the occurrence index needs the whole
    /// sorted report).
    pub fingerprint: String,
}

impl Finding {
    /// Builds a finding; `severity` travels as its wire name. The
    /// fingerprint is assigned at report assembly.
    pub fn new(
        lint: &str,
        severity: Severity,
        path: &str,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            lint: lint.to_string(),
            severity: severity.name().to_string(),
            path: path.to_string(),
            line: u64::from(line),
            message: message.into(),
            fingerprint: String::new(),
        }
    }

    /// True for deny-tier findings (the ones `--check` gates on).
    pub fn is_deny(&self) -> bool {
        self.severity == "deny"
    }

    /// The fingerprint hash input for occurrence `occ` of this
    /// (lint, path, message) triple.
    fn fingerprint_for(&self, occ: usize) -> String {
        let input = format!(
            "{}\u{1f}{}\u{1f}{}\u{1f}{}",
            self.lint, self.path, self.message, occ
        );
        format!("{:016x}", fnv1a64(input.as_bytes()))
    }
}

/// The whole analysis result, as serialized to `ANALYZER.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Files scanned (after fixture/target exclusions).
    pub files_scanned: u64,
    /// Deny-tier finding count.
    pub deny: u64,
    /// Warn-tier finding count.
    pub warn: u64,
    /// Findings suppressed by used allow annotations.
    pub suppressed: u64,
    /// All surviving findings, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
}

impl AnalyzerReport {
    /// Assembles a report from surviving findings: sorts them for a
    /// byte-stable artifact and assigns each its fingerprint
    /// (occurrence-indexed within identical (lint, path, message)
    /// triples, in sorted order).
    pub fn new(mut findings: Vec<Finding>, files_scanned: u64, suppressed: u64) -> Self {
        findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.lint.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.lint.as_str(),
            ))
        });
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for f in &mut findings {
            let mut occ = 0usize;
            loop {
                let fp = f.fingerprint_for(occ);
                if seen.insert(fp.clone()) {
                    f.fingerprint = fp;
                    break;
                }
                occ += 1;
            }
        }
        let deny = findings.iter().filter(|f| f.is_deny()).count() as u64;
        let warn = findings.len() as u64 - deny;
        AnalyzerReport {
            schema_version: SCHEMA_VERSION,
            files_scanned,
            deny,
            warn,
            suppressed,
            findings,
        }
    }

    /// Parses a baseline `ANALYZER.json`, refusing any schema version
    /// other than the current one (a v1 baseline has no fingerprints —
    /// regenerate it rather than silently diffing against nothing).
    pub fn load_baseline(json: &str) -> Result<AnalyzerReport, String> {
        let v = serde::json::parse(json).map_err(|e| format!("baseline is not JSON: {e:?}"))?;
        match v.get("schema_version") {
            Some(serde::json::Value::Num(n)) if *n as u64 == SCHEMA_VERSION => {}
            Some(serde::json::Value::Num(n)) => {
                return Err(format!(
                    "baseline has schema v{} but this analyzer writes v{SCHEMA_VERSION}; \
                     regenerate the baseline with `llp-analyzer --out`",
                    *n as u64
                ));
            }
            _ => return Err("baseline has no numeric schema_version field".to_string()),
        }
        AnalyzerReport::from_json(json).map_err(|e| format!("baseline does not decode: {e:?}"))
    }

    /// The findings of `self` whose fingerprints are absent from
    /// `baseline` — what a PR gate fails on.
    pub fn new_versus<'a>(&'a self, baseline: &AnalyzerReport) -> Vec<&'a Finding> {
        let known: BTreeSet<&str> = baseline
            .findings
            .iter()
            .map(|f| f.fingerprint.as_str())
            .collect();
        self.findings
            .iter()
            .filter(|f| !known.contains(f.fingerprint.as_str()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let r = AnalyzerReport::new(
            vec![
                Finding::new("wall-clock", Severity::Deny, "b.rs", 7, "clock read"),
                Finding::new("hot-loop-alloc", Severity::Warn, "a.rs", 3, "alloc in loop"),
            ],
            2,
            1,
        );
        assert_eq!(r.deny, 1);
        assert_eq!(r.warn, 1);
        // Sorted by path first.
        assert_eq!(r.findings[0].path, "a.rs");
        let back = AnalyzerReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }

    #[test]
    fn fingerprints_survive_line_drift_but_not_duplication() {
        let r1 = AnalyzerReport::new(
            vec![Finding::new(
                "wall-clock",
                Severity::Deny,
                "a.rs",
                10,
                "clock read",
            )],
            1,
            0,
        );
        // Same finding, shifted 5 lines down: identical fingerprint.
        let r2 = AnalyzerReport::new(
            vec![Finding::new(
                "wall-clock",
                Severity::Deny,
                "a.rs",
                15,
                "clock read",
            )],
            1,
            0,
        );
        assert_eq!(r1.findings[0].fingerprint, r2.findings[0].fingerprint);

        // A *second* identical violation gets a distinct fingerprint.
        let r3 = AnalyzerReport::new(
            vec![
                Finding::new("wall-clock", Severity::Deny, "a.rs", 10, "clock read"),
                Finding::new("wall-clock", Severity::Deny, "a.rs", 20, "clock read"),
            ],
            1,
            0,
        );
        let fps: Vec<&str> = r3.findings.iter().map(|f| f.fingerprint.as_str()).collect();
        assert_ne!(fps[0], fps[1]);
        assert!(fps.contains(&r1.findings[0].fingerprint.as_str()));
    }

    #[test]
    fn baseline_diff_reports_only_new_findings() {
        let base = AnalyzerReport::new(
            vec![Finding::new(
                "wall-clock",
                Severity::Deny,
                "a.rs",
                10,
                "clock read",
            )],
            1,
            0,
        );
        // Self-diff round-trips to zero.
        let reloaded = AnalyzerReport::load_baseline(&base.to_json()).expect("loads");
        assert!(base.new_versus(&reloaded).is_empty());

        let current = AnalyzerReport::new(
            vec![
                Finding::new("wall-clock", Severity::Deny, "a.rs", 12, "clock read"),
                Finding::new("env-read", Severity::Deny, "b.rs", 3, "env read"),
            ],
            2,
            0,
        );
        let fresh = current.new_versus(&base);
        assert_eq!(fresh.len(), 1, "{fresh:?}");
        assert_eq!(fresh[0].lint, "env-read");
    }

    #[test]
    fn v1_baseline_is_refused() {
        let json = r#"{"schema_version": 1, "files_scanned": 0, "deny": 0,
                       "warn": 0, "suppressed": 0, "findings": []}"#;
        let err = AnalyzerReport::load_baseline(json).unwrap_err();
        assert!(err.contains("schema v1"), "{err}");
    }
}
