//! Findings and the machine-readable `ANALYZER.json` report.
//!
//! Same pattern as `llp_bench::report`: plain named-field structs
//! serialized through the vendored serde derive, shortest-round-trip
//! floats (none here — lines are integers), and a `validate`-style
//! consumer (`--check`) that refuses what it does not understand.

use serde::{Deserialize, Serialize};

/// Bumped whenever a [`Finding`]/[`AnalyzerReport`] field changes
/// meaning; consumers refuse unknown versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Finding severity tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails `--check` (exit 1) — the CI gate.
    Deny,
    /// Reported and serialized, never fails the gate.
    Warn,
}

impl Severity {
    /// Wire name (`"deny"` / `"warn"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        }
    }
}

/// One lint finding at a source location.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Lint name (kebab-case, the allow-annotation key).
    pub lint: String,
    /// `"deny"` or `"warn"`.
    pub severity: String,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based source line.
    pub line: u64,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Builds a finding; `severity` travels as its wire name.
    pub fn new(
        lint: &str,
        severity: Severity,
        path: &str,
        line: u32,
        message: impl Into<String>,
    ) -> Self {
        Finding {
            lint: lint.to_string(),
            severity: severity.name().to_string(),
            path: path.to_string(),
            line: u64::from(line),
            message: message.into(),
        }
    }

    /// True for deny-tier findings (the ones `--check` gates on).
    pub fn is_deny(&self) -> bool {
        self.severity == "deny"
    }
}

/// The whole analysis result, as serialized to `ANALYZER.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyzerReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Files scanned (after fixture/target exclusions).
    pub files_scanned: u64,
    /// Deny-tier finding count.
    pub deny: u64,
    /// Warn-tier finding count.
    pub warn: u64,
    /// Findings suppressed by used allow annotations.
    pub suppressed: u64,
    /// All surviving findings, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
}

impl AnalyzerReport {
    /// Assembles a report from surviving findings (sorts them for a
    /// byte-stable artifact).
    pub fn new(mut findings: Vec<Finding>, files_scanned: u64, suppressed: u64) -> Self {
        findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.lint.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.lint.as_str(),
            ))
        });
        let deny = findings.iter().filter(|f| f.is_deny()).count() as u64;
        let warn = findings.len() as u64 - deny;
        AnalyzerReport {
            schema_version: SCHEMA_VERSION,
            files_scanned,
            deny,
            warn,
            suppressed,
            findings,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_json() {
        let r = AnalyzerReport::new(
            vec![
                Finding::new("wall-clock", Severity::Deny, "b.rs", 7, "clock read"),
                Finding::new("hot-loop-alloc", Severity::Warn, "a.rs", 3, "alloc in loop"),
            ],
            2,
            1,
        );
        assert_eq!(r.deny, 1);
        assert_eq!(r.warn, 1);
        // Sorted by path first.
        assert_eq!(r.findings[0].path, "a.rs");
        let back = AnalyzerReport::from_json(&r.to_json()).expect("roundtrip");
        assert_eq!(back, r);
    }
}
