//! Whole-workspace call-graph engine: function resolution, SCC
//! condensation, and fixpoint summaries.
//!
//! The lock-order pass originally propagated acquisitions **one**
//! call-graph level — enough for `self.lock()` wrappers, blind to a
//! deadlock two calls deep. This module gives every interprocedural
//! pass the same substrate instead:
//!
//! 1. **Definition harvest** — one linear walk per file collects every
//!    `fn`, qualified by its lexical context (file-derived module stem,
//!    inline `mod` blocks, `impl`/`trait` type), plus its signature and
//!    body token ranges. Nested `fn`s get their own defs and are carved
//!    out of the parent's scan range.
//! 2. **Call-site resolution** — call-shaped tokens (`name(…)`,
//!    `recv.name(…)`, `Path::name(…)`) resolve against the definition
//!    index. Qualified calls match when every qualifier segment (after
//!    `use … as` alias expansion and `llp_`-prefix normalization)
//!    appears in a candidate's segments; bare calls take every
//!    same-named def; method calls resolve only when the name is
//!    unambiguous workspace-wide (so `.clone()`/`.insert()` on std
//!    types cannot adopt a stranger's side effects).
//! 3. **Fixpoint summaries** — Tarjan SCCs over the call edges, then
//!    one pass in reverse topological order (callees first) computes,
//!    per function: the transitive mutex-acquisition set, may-block,
//!    may-panic, and FP-purity facts, each with a witness chain for
//!    findings (`worker_loop -> helper -> Instant::now()`).
//!
//! Consumers: `lockorder` (transitive acquisition/blocking under
//! guards, the `panic-path` lint) and `purity` (the `fp-kernel-purity`
//! lint over `policy::KERNEL_FILES`).

use crate::lexer::{matches_seq, Lexed, Tok, TokKind};
use crate::policy::ENV_OWNER;
use std::collections::{BTreeMap, BTreeSet};

/// One analyzed source file: workspace path, owning crate key, tokens.
pub struct FileMeta<'a> {
    /// Workspace-relative path (used in findings).
    pub path: &'a str,
    /// Policy key of the owning crate (`"core"`, `"llp_par"`, …).
    pub crate_key: &'a str,
    /// The lexed token stream.
    pub lexed: &'a Lexed,
}

/// Call-shaped identifiers that block (or are unboundedly expensive)
/// and must not run under a held lock. Shared with `lockorder`.
pub fn is_blocking_call(name: &str) -> bool {
    name == "send"
        || name == "recv"
        || name == "recv_timeout"
        || name == "join"
        || name == "execute"
        || name.starts_with("solve")
}

/// One function definition discovered in the workspace.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Qualification segments for call resolution: crate key, file stem
    /// (when not `lib`/`main`/`mod`), inline modules, `impl`/`trait`
    /// type, then the name itself.
    pub segments: Vec<String>,
    /// Index into the graph's file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range `[open brace, close brace]` of the body, inclusive.
    pub body: (usize, usize),
    /// True when the return type names a guard (`MutexGuard`, …): a
    /// `let`-bound call then holds the lock like a direct `.lock()`.
    pub returns_guard: bool,
}

impl FnDef {
    /// `segments` joined with `::` — the display name used in findings.
    pub fn qname(&self) -> String {
        self.segments.join("::")
    }
}

/// A resolved call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Token index (in the file's stream) of the callee name.
    pub tok: usize,
    /// 1-based source line of the call.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Resolved definition indices (empty: external / ambiguous).
    pub callees: Vec<usize>,
}

/// Where a transitive fact came from, for witness chains in findings.
#[derive(Clone, Debug)]
pub enum Source {
    /// The fact is a token pattern in this function's own body.
    Direct {
        /// What fired (`"Instant::now()"`, `".unwrap()"`, …).
        what: String,
        /// 1-based line of the site.
        line: u32,
    },
    /// Inherited from a callee at the given call line.
    Via {
        /// Definition index of the callee carrying the fact.
        callee: usize,
        /// 1-based line of the call in *this* function.
        line: u32,
    },
}

/// Transitive facts of one function (fixpoint over its SCC).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Mutexes acquired anywhere in the transitive call tree. A set,
    /// not a sequence: lock/unlock/relock in a callee is one
    /// acquisition from the caller's perspective (propagated
    /// acquisitions edge against the caller's held set, never against
    /// each other).
    pub acquires: BTreeSet<String>,
    /// The call tree reaches a blocking primitive.
    pub blocks: Option<Source>,
    /// The call tree reaches a panic-capable site
    /// (`unwrap`/`expect`/`panic!`-family/indexing).
    pub panics: Option<Source>,
    /// FP-purity violations by kind (`"wall-clock"`, `"env-read"`,
    /// `"unseeded-rng"`, `"hash-collection"`).
    pub impure: BTreeMap<&'static str, Source>,
}

/// Per-function facts readable directly off the body tokens.
#[derive(Clone, Debug, Default)]
struct DirectFacts {
    acquires: BTreeSet<String>,
    blocks: Option<Source>,
    panics: Option<Source>,
    impure: BTreeMap<&'static str, Source>,
}

/// The whole-workspace call graph plus computed summaries.
pub struct CallGraph<'a> {
    /// The analyzed files, in the order defs reference them.
    pub files: Vec<FileMeta<'a>>,
    /// Every function definition.
    pub defs: Vec<FnDef>,
    /// Call sites per definition, sorted by token index.
    pub calls: Vec<Vec<CallSite>>,
    /// Mutex names discovered across all files.
    pub mutexes: BTreeSet<String>,
    /// Transitive summaries, indexed like `defs`.
    pub summaries: Vec<Summary>,
    /// Direct (intraprocedural) acquisition sets, indexed like `defs` —
    /// what the pre-engine one-level propagation saw. Kept for the
    /// regression mode proving the fixpoint catches what one level
    /// missed.
    pub direct_acquires: Vec<BTreeSet<String>>,
    /// Per-def token ranges of *nested* fn bodies (defining a nested fn
    /// is not executing it), for consumers re-walking body tokens.
    pub nested: Vec<Vec<(usize, usize)>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph and computes summaries for `files`.
    pub fn build(files: Vec<FileMeta<'a>>) -> Self {
        let mut mutexes = BTreeSet::new();
        for f in &files {
            discover_mutexes(&f.lexed.toks, &mut mutexes);
        }

        // Pass 1: definitions.
        let mut defs: Vec<FnDef> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            harvest_defs(fi, f, &mut defs);
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, d) in defs.iter().enumerate() {
            by_name.entry(d.name.as_str()).or_default().push(i);
        }

        // Pass 2: call sites + direct facts, skipping nested defs'
        // token ranges (defining a nested fn is not executing it).
        let mut nested: Vec<Vec<(usize, usize)>> = vec![Vec::new(); defs.len()];
        for (i, d) in defs.iter().enumerate() {
            for (j, e) in defs.iter().enumerate() {
                if i != j && d.file == e.file && d.body.0 < e.body.0 && e.body.1 <= d.body.1 {
                    nested[i].push(e.body);
                }
            }
        }
        let aliases: Vec<BTreeMap<String, Vec<String>>> = files
            .iter()
            .map(|f| collect_aliases(&f.lexed.toks))
            .collect();
        let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(defs.len());
        let mut direct: Vec<DirectFacts> = Vec::with_capacity(defs.len());
        for (i, d) in defs.iter().enumerate() {
            let f = &files[d.file];
            let (sites, facts) = scan_def(
                f,
                d,
                &nested[i],
                &mutexes,
                &by_name,
                &defs,
                &aliases[d.file],
            );
            calls.push(sites);
            direct.push(facts);
        }

        // Pass 3: fixpoint by SCC condensation. Tarjan emits an SCC
        // only after all its successors, so walking the emission order
        // processes callees before callers and one union per SCC is the
        // fixpoint.
        let sccs = tarjan_sccs(defs.len(), &calls);
        let mut scc_of = vec![usize::MAX; defs.len()];
        for (si, scc) in sccs.iter().enumerate() {
            for &d in scc {
                scc_of[d] = si;
            }
        }
        let mut summaries: Vec<Summary> = vec![Summary::default(); defs.len()];
        let mut done = vec![false; defs.len()];
        for scc in &sccs {
            // Accumulate the SCC-wide fact set: every member's direct
            // facts plus every external callee's (already final)
            // summary.
            let mut acc = Summary::default();
            for &m in scc {
                let df = &direct[m];
                acc.acquires.extend(df.acquires.iter().cloned());
                for site in &calls[m] {
                    for &c in &site.callees {
                        if scc_of[c] != scc_of[m] {
                            debug_assert!(done[c], "callee SCC not yet summarized");
                            acc.acquires.extend(summaries[c].acquires.iter().cloned());
                        }
                    }
                }
            }
            let member_has =
                |acc_kind: &dyn Fn(&DirectFacts) -> bool| scc.iter().any(|&m| acc_kind(&direct[m]));
            let callee_fact = |m: usize, has: &dyn Fn(&Summary) -> bool| -> Option<Source> {
                calls[m].iter().find_map(|site| {
                    site.callees.iter().find_map(|&c| {
                        let external = scc_of[c] != scc_of[m];
                        let carries = if external {
                            has(&summaries[c])
                        } else {
                            // Same SCC: decided by the accumulated
                            // member facts below; conservative — the
                            // chain renderer caps cycles.
                            false
                        };
                        carries.then_some(Source::Via {
                            callee: c,
                            line: site.line,
                        })
                    })
                })
            };
            let scc_blocks = member_has(&|d| d.blocks.is_some())
                || scc
                    .iter()
                    .any(|&m| callee_fact(m, &|s| s.blocks.is_some()).is_some());
            let scc_panics = member_has(&|d| d.panics.is_some())
                || scc
                    .iter()
                    .any(|&m| callee_fact(m, &|s| s.panics.is_some()).is_some());
            let mut scc_impure: BTreeSet<&'static str> = BTreeSet::new();
            for &m in scc {
                scc_impure.extend(direct[m].impure.keys().copied());
                for site in &calls[m] {
                    for &c in &site.callees {
                        if scc_of[c] != scc_of[m] {
                            scc_impure.extend(summaries[c].impure.keys().copied());
                        }
                    }
                }
            }
            // Assign to each member, preferring its own witness so the
            // reported chain starts in the member's file. Computed
            // first, written after: `callee_fact` holds `summaries`
            // borrowed until its last call.
            let assigned: Vec<(usize, Summary)> = scc
                .iter()
                .map(|&m| {
                    let mut s = Summary {
                        acquires: acc.acquires.clone(),
                        ..Summary::default()
                    };
                    if scc_blocks {
                        s.blocks = direct[m]
                            .blocks
                            .clone()
                            .or_else(|| callee_fact(m, &|c| c.blocks.is_some()))
                            .or_else(|| in_scc_source(m, scc_of[m], &scc_of, &calls));
                    }
                    if scc_panics {
                        s.panics = direct[m]
                            .panics
                            .clone()
                            .or_else(|| callee_fact(m, &|c| c.panics.is_some()))
                            .or_else(|| in_scc_source(m, scc_of[m], &scc_of, &calls));
                    }
                    for &kind in &scc_impure {
                        let src = direct[m]
                            .impure
                            .get(kind)
                            .cloned()
                            .or_else(|| callee_fact(m, &|c| c.impure.contains_key(kind)))
                            .or_else(|| in_scc_source(m, scc_of[m], &scc_of, &calls));
                        if let Some(src) = src {
                            s.impure.insert(kind, src);
                        }
                    }
                    (m, s)
                })
                .collect();
            for (m, s) in assigned {
                summaries[m] = s;
            }
            for &m in scc {
                done[m] = true;
            }
        }

        let direct_acquires = direct.iter().map(|d| d.acquires.clone()).collect();
        CallGraph {
            files,
            defs,
            calls,
            mutexes,
            summaries,
            direct_acquires,
            nested,
        }
    }

    /// Renders a witness chain starting at `def`'s source for `fact`,
    /// e.g. `service::worker_loop -> exec::helper: Instant::now() in
    /// crates/service/src/exec.rs`. Cycle-guarded and depth-capped; ends
    /// at the direct site. Deliberately line-number-free: chains land in
    /// finding messages, and messages feed the stable fingerprint —
    /// embedding a line would churn baselines on every unrelated edit.
    pub fn render_chain(&self, def: usize, pick: impl Fn(&Summary) -> Option<&Source>) -> String {
        let mut names = vec![self.defs[def].qname()];
        let mut seen = BTreeSet::from([def]);
        let mut cur = def;
        for _ in 0..8 {
            match pick(&self.summaries[cur]) {
                Some(Source::Direct { what, line: _ }) => {
                    let path = self.files[self.defs[cur].file].path;
                    return format!("{}: {} in {}", names.join(" -> "), what, path);
                }
                Some(Source::Via { callee, .. }) => {
                    if !seen.insert(*callee) {
                        break; // recursion cycle in the witness chain
                    }
                    cur = *callee;
                    names.push(self.defs[cur].qname());
                }
                None => break,
            }
        }
        names.join(" -> ")
    }

    /// The definitions whose bodies live in `path`.
    pub fn defs_in_file(&self, path: &str) -> Vec<usize> {
        self.defs
            .iter()
            .enumerate()
            .filter(|(_, d)| self.files[d.file].path == path)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Fallback witness for SCC members whose fact arrived through an
/// in-SCC edge (mutual recursion): point at the first in-SCC call.
fn in_scc_source(
    m: usize,
    scc: usize,
    scc_of: &[usize],
    calls: &[Vec<CallSite>],
) -> Option<Source> {
    calls[m].iter().find_map(|site| {
        site.callees
            .iter()
            .find(|&&c| scc_of[c] == scc && c != m)
            .map(|&c| Source::Via {
                callee: c,
                line: site.line,
            })
    })
}

/// Collects mutex names: `name : Mutex <` fields/params and
/// `let name = Mutex :: new` bindings (same shapes as the original
/// lock-order pass, now discovered workspace-wide).
pub fn discover_mutexes(toks: &[Tok], out: &mut BTreeSet<String>) {
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || toks[i].text != "Mutex" {
            continue;
        }
        if i >= 2 && toks[i - 1].text == ":" && toks[i - 2].kind == TokKind::Ident {
            out.insert(toks[i - 2].text.clone());
        }
        let mut j = i;
        while j >= 1
            && (toks[j - 1].kind == TokKind::Punct
                || toks[j - 1].text == "Arc"
                || toks[j - 1].text == "new")
            && toks[j - 1].text != ";"
            && toks[j - 1].text != "{"
        {
            j -= 1;
        }
        let plain_let = j >= 2 && toks[j - 1].kind == TokKind::Ident && toks[j - 2].text == "let";
        let mut_let = j >= 3
            && toks[j - 1].kind == TokKind::Ident
            && toks[j - 2].text == "mut"
            && toks[j - 3].text == "let";
        if plain_let || mut_let {
            out.insert(toks[j - 1].text.clone());
        }
    }
}

/// Module-stem segment of a file path: `crates/core/src/clarkson.rs`
/// contributes `clarkson`; `lib.rs`/`main.rs`/`mod.rs` contribute
/// nothing (they are the crate/module root).
fn file_stem_segment(path: &str) -> Option<String> {
    let stem = path.rsplit('/').next()?.strip_suffix(".rs")?;
    if stem == "lib" || stem == "main" || stem == "mod" {
        None
    } else {
        Some(stem.to_string())
    }
}

/// Harvests every `fn` definition in one file, qualified by the lexical
/// `mod`/`impl`/`trait` scope stack.
fn harvest_defs(file_idx: usize, f: &FileMeta<'_>, out: &mut Vec<FnDef>) {
    let toks = &f.lexed.toks;
    // Pre-pass: map each scope-opening `{` token index to its context.
    #[derive(Clone)]
    enum Scope {
        Module(String),
        Type(String),
        Plain,
    }
    let mut openers: BTreeMap<usize, Scope> = BTreeMap::new();
    let mut fn_at: BTreeMap<usize, (String, u32, bool)> = BTreeMap::new(); // body `{` -> (name, line, returns_guard)
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod"
                if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                    && toks.get(i + 2).is_some_and(|b| b.text == "{") =>
            {
                openers.insert(i + 2, Scope::Module(toks[i + 1].text.clone()));
                i += 3;
                continue;
            }
            "impl" | "trait" => {
                if let Some((ty, open)) = parse_type_header(toks, i) {
                    openers.insert(open, Scope::Type(ty));
                    i += 1;
                    continue;
                }
            }
            "fn" => {
                if let Some(name_tok) = toks.get(i + 1) {
                    if name_tok.kind == TokKind::Ident {
                        if let Some(open) = find_body_open(toks, i + 2) {
                            let returns_guard = toks[i + 2..open]
                                .iter()
                                .any(|t| t.kind == TokKind::Ident && t.text.contains("Guard"));
                            fn_at.insert(open, (name_tok.text.clone(), t.line, returns_guard));
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Linear walk with a scope stack to assign qualified names and find
    // each body's closing brace.
    let mut stack: Vec<(Scope, Option<usize>)> = Vec::new(); // (scope, def idx opened here)
    let mut segments: Vec<String> = vec![f.crate_key.to_string()];
    if let Some(stem) = file_stem_segment(f.path) {
        segments.push(stem);
    }
    let base_len = segments.len();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => {
                if let Some((name, line, returns_guard)) = fn_at.get(&i) {
                    let mut segs = segments.clone();
                    segs.push(name.clone());
                    out.push(FnDef {
                        name: name.clone(),
                        segments: segs,
                        file: file_idx,
                        line: *line,
                        body: (i, i), // close patched on pop
                        returns_guard: *returns_guard,
                    });
                    stack.push((Scope::Plain, Some(out.len() - 1)));
                } else {
                    let scope = openers.get(&i).cloned().unwrap_or(Scope::Plain);
                    match &scope {
                        Scope::Module(m) => segments.push(m.clone()),
                        Scope::Type(ty) => segments.push(ty.clone()),
                        Scope::Plain => {}
                    }
                    stack.push((scope, None));
                }
            }
            "}" => {
                if let Some((scope, def)) = stack.pop() {
                    if let Some(d) = def {
                        out[d].body.1 = i;
                    }
                    match scope {
                        Scope::Module(_) | Scope::Type(_) if segments.len() > base_len => {
                            segments.pop();
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

/// Parses an `impl`/`trait` header at `i`, returning the subject type's
/// last path segment and the body-opening `{` index.
fn parse_type_header(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut last_ident: Option<String> = None;
    let mut subject: Option<String> = None;
    while j < toks.len() {
        let t = &toks[j];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "<") => angle += 1,
            (TokKind::Punct, ">") => angle -= 1,
            (TokKind::Ident, "for") if angle == 0 => {
                // `impl Trait for Type` — the subject is after `for`.
                last_ident = None;
            }
            (TokKind::Ident, "where") if angle == 0 => {
                subject = subject.or(last_ident.take());
            }
            (TokKind::Ident, _) if angle == 0 => last_ident = Some(t.text.clone()),
            (TokKind::Punct, "{") if angle == 0 => {
                return Some((subject.or(last_ident)?, j));
            }
            (TokKind::Punct, ";") if angle == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Finds the body-opening `{` of a fn whose signature starts at `from`
/// (just past the name): the first `{` at paren/bracket depth 0; a `;`
/// first means a bodyless declaration.
fn find_body_open(toks: &[Tok], from: usize) -> Option<usize> {
    let mut j = from;
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Collects `use … as alias;` mappings of one file:
/// alias → normalized target segments.
fn collect_aliases(toks: &[Tok]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "use" {
            let mut j = i + 1;
            let mut segs: Vec<String> = Vec::new();
            while j < toks.len() && toks[j].text != ";" {
                if toks[j].kind == TokKind::Ident {
                    if toks[j].text == "as" {
                        if let Some(alias) = toks.get(j + 1).filter(|t| t.kind == TokKind::Ident) {
                            out.insert(alias.text.clone(), normalize_segments(&segs));
                            j += 1; // don't treat the alias as a path segment
                        }
                    } else {
                        segs.push(toks[j].text.clone());
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Normalizes qualifier/definition segments for matching: drops
/// `crate`/`self`/`super`/`Self` and the `llp_` crate-name prefix.
fn normalize_segments(segs: &[String]) -> Vec<String> {
    segs.iter()
        .filter(|s| !matches!(s.as_str(), "crate" | "self" | "super" | "Self"))
        .map(|s| s.strip_prefix("llp_").unwrap_or(s).to_string())
        .collect()
}

/// Keywords that look call-shaped when followed by `(`.
pub fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "return"
            | "for"
            | "loop"
            | "let"
            | "else"
            | "move"
            | "in"
            | "as"
            | "fn"
            | "impl"
            | "use"
            | "mod"
            | "where"
            | "break"
            | "continue"
            | "await"
    )
}

/// True when the `.unwrap(`/`.expect(` at token `i` chains directly
/// onto a `lock()`/`wait*()` call: poison plumbing, which can only
/// panic if the mutex is *already* poisoned — never the origin of a
/// poisoning panic itself.
pub fn is_poison_plumbing(toks: &[Tok], i: usize) -> bool {
    // Shape: … lock ( … ) . unwrap (   — walk back over the `.`, the
    // `)`, its matching `(`, to the callee name.
    if i < 2 || toks[i - 1].text != "." || toks[i - 2].text != ")" {
        return false;
    }
    let mut depth = 0i32;
    let mut j = i - 2;
    loop {
        match toks[j].text.as_str() {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    j >= 1
        && toks[j - 1].kind == TokKind::Ident
        && matches!(
            toks[j - 1].text.as_str(),
            "lock" | "wait" | "wait_while" | "wait_timeout"
        )
}

/// Scans one definition's body (minus nested defs): resolved call
/// sites plus direct facts.
#[allow(clippy::too_many_arguments)]
fn scan_def(
    f: &FileMeta<'_>,
    d: &FnDef,
    nested: &[(usize, usize)],
    mutexes: &BTreeSet<String>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    defs: &[FnDef],
    aliases: &BTreeMap<String, Vec<String>>,
) -> (Vec<CallSite>, DirectFacts) {
    let toks = &f.lexed.toks;
    let mut sites = Vec::new();
    let mut facts = DirectFacts::default();
    let env_exempt = f.crate_key == ENV_OWNER;
    let mut i = d.body.0;
    while i <= d.body.1 && i < toks.len() {
        if let Some(&(_, end)) = nested.iter().find(|(s, _)| *s == i) {
            i = end + 1; // skip the nested definition's body
            continue;
        }
        let t = &toks[i];
        // Indexing is panic-capable: `expr[…]` after an ident, `)` or
        // `]` (never `#[attr]`, array literals, or slice types).
        if t.kind == TokKind::Punct && t.text == "[" && i > d.body.0 {
            let p = &toks[i - 1];
            let indexing = (p.kind == TokKind::Ident && !is_keyword(&p.text))
                || p.text == ")"
                || p.text == "]";
            if indexing && facts.panics.is_none() {
                facts.panics = Some(Source::Direct {
                    what: "indexing".to_string(),
                    line: t.line,
                });
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = t.text.as_str();
        // Impurity facts (same token shapes as the per-file lints).
        match name {
            "Instant" | "SystemTime" if matches_seq(toks, i + 1, &["::", "now"]) => {
                facts.impure.entry("wall-clock").or_insert(Source::Direct {
                    what: format!("{name}::now()"),
                    line: t.line,
                });
            }
            "env"
                if !env_exempt
                    && (matches_seq(toks, i + 1, &["::", "var"])
                        || matches_seq(toks, i + 1, &["::", "var_os"])
                        || matches_seq(toks, i + 1, &["::", "vars"])) =>
            {
                facts.impure.entry("env-read").or_insert(Source::Direct {
                    what: "env read".to_string(),
                    line: t.line,
                });
            }
            "ThreadRng" | "thread_rng" | "from_entropy" | "from_os_rng" | "OsRng" => {
                facts
                    .impure
                    .entry("unseeded-rng")
                    .or_insert(Source::Direct {
                        what: format!("`{name}`"),
                        line: t.line,
                    });
            }
            "HashMap" | "HashSet" => {
                facts
                    .impure
                    .entry("hash-collection")
                    .or_insert(Source::Direct {
                        what: format!("`{name}` (process-seeded iteration order)"),
                        line: t.line,
                    });
            }
            _ => {}
        }
        // Panic macros.
        if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            if facts.panics.is_none() {
                facts.panics = Some(Source::Direct {
                    what: format!("{name}!"),
                    line: t.line,
                });
            }
            i += 1;
            continue;
        }
        // Call shapes.
        let is_call = toks.get(i + 1).is_some_and(|n| n.text == "(");
        if !is_call || is_keyword(name) {
            i += 1;
            continue;
        }
        // `fn inner(…)` — a nested definition's signature, not a call.
        if i >= 1 && toks[i - 1].text == "fn" {
            i += 1;
            continue;
        }
        // `drop(g)` is std's mem::drop, not a workspace `Drop::drop`
        // impl — resolving it would graft e.g. a service teardown's
        // blocking `join` onto every guard release in the workspace.
        if name == "drop" {
            i += 1;
            continue;
        }
        if matches!(name, "unwrap" | "expect") && i >= 1 && toks[i - 1].text == "." {
            if !is_poison_plumbing(toks, i) && facts.panics.is_none() {
                facts.panics = Some(Source::Direct {
                    what: format!(".{name}()"),
                    line: t.line,
                });
            }
            i += 1;
            continue;
        }
        if is_blocking_call(name) && facts.blocks.is_none() {
            facts.blocks = Some(Source::Direct {
                what: format!("{name}(…)"),
                line: t.line,
            });
        }
        // `.lock()` on a known mutex: a direct acquisition.
        if name == "lock"
            && i >= 2
            && toks[i - 1].text == "."
            && mutexes.contains(toks[i - 2].text.as_str())
        {
            facts.acquires.insert(toks[i - 2].text.clone());
            i += 1;
            continue;
        }
        // Resolve the callee.
        let callees = resolve_call(toks, i, d, by_name, defs, aliases);
        sites.push(CallSite {
            tok: i,
            line: t.line,
            name: name.to_string(),
            callees,
        });
        i += 1;
    }
    (sites, facts)
}

/// Resolves the call at token `i` (an ident followed by `(`) made from
/// inside definition `caller`.
///
/// - **Qualified** (`path::name(…)`): alias-expanded qualifier
///   segments must all appear among a candidate's segments — the only
///   mode that resolves across crates (cross-crate calls are always
///   path-qualified or imported; imports of *common* names are exactly
///   the promiscuity this avoids).
/// - **Bare** (`name(…)`): candidates in the caller's file, else in
///   the caller's crate. Never cross-crate — a bare `run(…)` in a test
///   helper must not adopt the side effects of every `fn run` in the
///   workspace.
/// - **Method** (`recv.name(…)`): the receiver's type is unknown, so
///   only an *unambiguous* name resolves — unique in the caller's
///   file, else unique workspace-wide. `.clone()`/`.get()` on std
///   types thus stay external instead of adopting a stranger's facts.
fn resolve_call(
    toks: &[Tok],
    i: usize,
    caller: &FnDef,
    by_name: &BTreeMap<&str, Vec<usize>>,
    defs: &[FnDef],
    aliases: &BTreeMap<String, Vec<String>>,
) -> Vec<usize> {
    let Some(candidates) = by_name.get(toks[i].text.as_str()) else {
        return Vec::new();
    };
    // Collect the `seg :: seg :: name` qualifier, if any.
    let mut quals: Vec<String> = Vec::new();
    let mut j = i;
    while j >= 2 && toks[j - 1].text == "::" && toks[j - 2].kind == TokKind::Ident {
        quals.insert(0, toks[j - 2].text.clone());
        j -= 2;
    }
    if !quals.is_empty() {
        // Expand a leading `use … as` alias, then require every
        // qualifier segment to appear among the candidate's segments.
        let mut expanded: Vec<String> = Vec::new();
        if let Some(target) = aliases.get(&quals[0]) {
            expanded.extend(target.iter().cloned());
            expanded.extend(quals[1..].iter().cloned());
        } else {
            expanded = quals;
        }
        let want = normalize_segments(&expanded);
        // `Self::new()` / `crate::helper()` qualifiers normalize to
        // nothing; a vacuous filter would adopt every same-named def
        // in the workspace, so fall through to unqualified scoping.
        if !want.is_empty() {
            return candidates
                .iter()
                .copied()
                .filter(|&c| {
                    let have = normalize_segments(&defs[c].segments);
                    want.iter().all(|q| have.contains(q))
                })
                .collect();
        }
    }
    let same_file: Vec<usize> = candidates
        .iter()
        .copied()
        .filter(|&c| defs[c].file == caller.file)
        .collect();
    let is_method = i >= 1 && toks[i - 1].text == ".";
    if is_method {
        if same_file.len() == 1 {
            return same_file;
        }
        if same_file.is_empty() && candidates.len() == 1 {
            return candidates.clone();
        }
        return Vec::new();
    }
    if !same_file.is_empty() {
        return same_file;
    }
    candidates
        .iter()
        .copied()
        .filter(|&c| defs[c].segments.first() == caller.segments.first())
        .collect()
}

/// Iterative Tarjan SCC. Returns SCCs in emission order — each SCC
/// after all SCCs it calls into — which is exactly the fixpoint
/// processing order.
fn tarjan_sccs(n: usize, calls: &[Vec<CallSite>]) -> Vec<Vec<usize>> {
    let adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            let mut out: Vec<usize> = calls[i]
                .iter()
                .flat_map(|s| s.callees.iter().copied())
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
        .collect();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // Work stack: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ci) {
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn graph<'a>(files: &'a [(String, Lexed)]) -> CallGraph<'a> {
        CallGraph::build(
            files
                .iter()
                .map(|(p, l)| FileMeta {
                    path: p,
                    crate_key: "x",
                    lexed: l,
                })
                .collect(),
        )
    }

    fn lexed(srcs: &[(&str, &str)]) -> Vec<(String, Lexed)> {
        srcs.iter().map(|(p, s)| (p.to_string(), lex(s))).collect()
    }

    fn def_idx(g: &CallGraph<'_>, name: &str) -> usize {
        g.defs
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("no def {name}"))
    }

    #[test]
    fn defs_are_qualified_by_module_and_impl() {
        let files = lexed(&[(
            "crates/x/src/cache.rs",
            "impl<V: Clone> LruCache<V> { fn get(&mut self) {} }
             mod inner { fn helper() {} }
             fn free() {}",
        )]);
        let g = graph(&files);
        let names: Vec<String> = g.defs.iter().map(|d| d.qname()).collect();
        assert!(
            names.contains(&"x::cache::LruCache::get".to_string()),
            "{names:?}"
        );
        assert!(
            names.contains(&"x::cache::inner::helper".to_string()),
            "{names:?}"
        );
        assert!(names.contains(&"x::cache::free".to_string()), "{names:?}");
    }

    #[test]
    fn transitive_acquires_cross_files_and_levels() {
        let files = lexed(&[
            (
                "crates/x/src/a.rs",
                "struct S { m: Mutex<u32> }
                 fn deep(s: &S) { let g = s.m.lock(); }
                 fn mid(s: &S) { deep(s); }",
            ),
            ("crates/x/src/b.rs", "fn top(s: &S) { mid(s); }"),
        ]);
        let g = graph(&files);
        let top = def_idx(&g, "top");
        assert!(
            g.summaries[top].acquires.contains("m"),
            "{:?}",
            g.summaries[top]
        );
    }

    #[test]
    fn recursion_reaches_a_fixpoint() {
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "struct S { m: Mutex<u32> }
             fn ping(s: &S, n: u32) { if n > 0 { pong(s, n - 1) } }
             fn pong(s: &S, n: u32) { let g = s.m.lock(); ping(s, n) }",
        )]);
        let g = graph(&files);
        for f in ["ping", "pong"] {
            let d = def_idx(&g, f);
            assert!(
                g.summaries[d].acquires.contains("m"),
                "{f}: {:?}",
                g.summaries[d]
            );
        }
    }

    #[test]
    fn may_panic_propagates_with_witness_chain() {
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "fn leaf(v: &[u32]) -> u32 { v.first().unwrap() }
             fn caller(v: &[u32]) -> u32 { leaf(v) }",
        )]);
        let g = graph(&files);
        let caller = def_idx(&g, "caller");
        assert!(g.summaries[caller].panics.is_some());
        let chain = g.render_chain(caller, |s| s.panics.as_ref());
        assert!(chain.contains("caller -> x::a::leaf"), "{chain}");
        assert!(chain.contains(".unwrap()"), "{chain}");
    }

    #[test]
    fn lock_unwrap_is_poison_plumbing_not_a_panic_site() {
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "struct S { m: Mutex<u32> }
             fn f(s: &S) { let g = s.m.lock().unwrap(); }",
        )]);
        let g = graph(&files);
        let f = def_idx(&g, "f");
        assert!(g.summaries[f].panics.is_none(), "{:?}", g.summaries[f]);
        assert!(g.summaries[f].acquires.contains("m"));
    }

    #[test]
    fn indexing_is_a_panic_site_but_attributes_are_not() {
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "fn idx(v: &[u32], i: usize) -> u32 { v[i] }
             #[inline]
             fn clean(v: &[u32]) -> usize { v.len() }",
        )]);
        let g = graph(&files);
        assert!(g.summaries[def_idx(&g, "idx")].panics.is_some());
        assert!(g.summaries[def_idx(&g, "clean")].panics.is_none());
    }

    #[test]
    fn method_calls_resolve_only_unambiguous_names() {
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "impl A { fn tick(&self) { let t = Instant::now(); } }
             impl B { fn poke(&self) {} }
             fn user(a: &A) { a.tick(); }",
        )]);
        let g = graph(&files);
        let user = def_idx(&g, "user");
        assert!(
            g.summaries[user].impure.contains_key("wall-clock"),
            "{:?}",
            g.summaries[user].impure
        );
    }

    #[test]
    fn alias_imports_resolve_qualified_calls() {
        let files = lexed(&[
            (
                "crates/x/src/coordinator.rs",
                "pub fn run_round() { let t = SystemTime::now(); }",
            ),
            (
                "crates/x/src/b.rs",
                "use llp_x::coordinator as coord_impl;
                 fn drive() { coord_impl::run_round(); }",
            ),
        ]);
        let g = graph(&files);
        let drive = def_idx(&g, "drive");
        assert!(
            g.summaries[drive].impure.contains_key("wall-clock"),
            "{:?}",
            g.summaries[drive].impure
        );
    }

    #[test]
    fn unqualified_std_paths_do_not_adopt_workspace_defs() {
        // `Vec::new(…)` must not resolve to some workspace `new`.
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "impl Gadget { fn new() -> Gadget { let t = Instant::now(); Gadget } }
             fn clean() { let v: Vec<u32> = Vec::new(); }",
        )]);
        let g = graph(&files);
        let clean = def_idx(&g, "clean");
        assert!(
            g.summaries[clean].impure.is_empty(),
            "{:?}",
            g.summaries[clean].impure
        );
    }

    #[test]
    fn nested_fn_facts_do_not_leak_into_parent() {
        let files = lexed(&[(
            "crates/x/src/a.rs",
            "fn outer() { fn inner() { let t = Instant::now(); } }",
        )]);
        let g = graph(&files);
        let outer = def_idx(&g, "outer");
        assert!(
            g.summaries[outer].impure.is_empty(),
            "{:?}",
            g.summaries[outer].impure
        );
        let inner = def_idx(&g, "inner");
        assert!(g.summaries[inner].impure.contains_key("wall-clock"));
    }
}
