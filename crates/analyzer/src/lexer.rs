//! A hand-rolled Rust lexer for the lint passes.
//!
//! Same vendored-from-scratch spirit as `vendor/serde_derive`'s
//! proc-macro parser: no `syn`, no `proc_macro2` — just enough of the
//! Rust lexical grammar to walk this workspace's own sources reliably.
//! The token stream is flat (delimiters are ordinary punctuation tokens);
//! the lint passes track brace depth themselves where they need scope.
//!
//! What must be exactly right for the lints to be trustworthy:
//!
//! * **Strings never produce identifier tokens** — a help text mentioning
//!   `LLP_THREADS` or a lint pattern written as `"HashMap"` (this crate's
//!   own source!) must not fire anything. Ordinary, raw (`r#"…"#`), byte,
//!   and byte-raw strings are all consumed as single [`TokKind::Str`]
//!   tokens.
//! * **Comments are captured, not skipped** — the allow-annotation
//!   grammar (`// llp-analyzer: allow(<lint>) -- <reason>`) lives in line
//!   comments, so the lexer returns them alongside the tokens. Block
//!   comments nest, as in real Rust.
//! * **Lifetimes are not char literals** — `'a` must not swallow the
//!   rest of the file looking for a closing quote.
//! * **`::` is one token** — the lint patterns are path-shaped
//!   (`Instant::now`, `env::var`), so the lexer fuses the two colons.

/// What a token is, as far as the lints care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation; `::` is fused into a single token.
    Punct,
    /// Numeric literal (loosely consumed — lints never inspect digits).
    Num,
    /// String literal of any flavor (ordinary/raw/byte), escapes resolved
    /// lexically only (the text is the raw source slice).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Source text of the token (for `Punct`, the operator itself).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One `//` line comment (doc comments included) with its 1-based line.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Comment text including the leading `//`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All `//` comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one file. Total: every byte is consumed; malformed input (an
/// unterminated string, say) ends the current token at end-of-file rather
/// than panicking — the analyzer must never take the CI gate down with it.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = chars.len();

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }
        // Line comment (incl. `///`, `//!`).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                text,
                line: start_line,
            });
            continue;
        }
        // Block comment, nesting.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            i += 2;
            let mut depth = 1usize;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    bump_line!(chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw / byte / byte-raw string prefixes: r" r#" b" br#" …
        if (c == 'r' || c == 'b') && i + 1 < n {
            let (prefix_len, raw) = raw_string_prefix(&chars[i..]);
            if prefix_len > 0 {
                let start_line = line;
                let mut j = i + prefix_len; // positioned just past the opening quote
                let hashes = chars[i..i + prefix_len]
                    .iter()
                    .filter(|&&h| h == '#')
                    .count();
                let mut text = String::new();
                if raw {
                    // Scan to `"` followed by `hashes` `#`s; no escapes.
                    while j < n {
                        if chars[j] == '"'
                            && chars[j + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            j += 1 + hashes;
                            break;
                        }
                        bump_line!(chars[j]);
                        text.push(chars[j]);
                        j += 1;
                    }
                } else {
                    // b"…" with ordinary escapes.
                    while j < n {
                        if chars[j] == '\\' && j + 1 < n {
                            text.push(chars[j + 1]);
                            j += 2;
                            continue;
                        }
                        if chars[j] == '"' {
                            j += 1;
                            break;
                        }
                        bump_line!(chars[j]);
                        text.push(chars[j]);
                        j += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
                i = j;
                continue;
            }
        }
        // Ordinary string.
        if c == '"' {
            let start_line = line;
            let mut j = i + 1;
            let mut text = String::new();
            while j < n {
                if chars[j] == '\\' && j + 1 < n {
                    text.push(chars[j + 1]);
                    j += 2;
                    continue;
                }
                if chars[j] == '"' {
                    j += 1;
                    break;
                }
                bump_line!(chars[j]);
                text.push(chars[j]);
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // `'\…'` or `'x'` → char; `'ident` not followed by `'` → lifetime.
            if i + 1 < n && chars[i + 1] == '\\' {
                // Escaped char literal: consume to closing quote.
                let mut j = i + 2;
                while j < n && chars[j] != '\'' {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i..(j + 1).min(n)].iter().collect(),
                    line,
                });
                i = (j + 1).min(n);
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i..i + 3].iter().collect(),
                    line,
                });
                i += 3;
                continue;
            }
            // Lifetime: 'ident (or a stray quote — consume one char).
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j.max(i + 1);
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number: digits plus the alphanumeric/underscore/dot tail
        // (`1_000u64`, `1.5e3`). The lints never look inside numbers, so
        // a split exponent sign (`1e-7` → `1e`, `-`, `7`) is harmless.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_continue(chars[j]) || chars[j] == '.') {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Punctuation; fuse `::` so lint patterns are path-shaped.
        if c == ':' && i + 1 < n && chars[i + 1] == ':' {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Detects a raw/byte string prefix at `chars[0..]`. Returns
/// `(length_through_opening_quote, is_raw)`; `(0, _)` if none.
fn raw_string_prefix(chars: &[char]) -> (usize, bool) {
    let mut j = 0usize;
    let mut raw = false;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        raw = true;
        j += 1;
    }
    if j == 0 {
        return (0, false);
    }
    if raw {
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    if chars.get(j) == Some(&'"') {
        (j + 1, raw)
    } else {
        (0, false)
    }
}

/// True when `toks[i..]` matches `pattern` (idents and puncts compared by
/// text; the pattern never contains strings or numbers).
pub fn matches_seq(toks: &[Tok], i: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, p)| toks.get(i + k).is_some_and(|t| t.text == *p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_identifiers() {
        let src = r##"let x = "HashMap::new"; let y = r#"Instant::now"#; let z = b"env";"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert_eq!(ids, vec!["let", "x", "let", "y", "let", "z"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_char_and_nested_block_comment() {
        let lexed = lex("let nl = '\\n'; /* outer /* inner */ still */ let t = 1;");
        let ids = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .count();
        assert_eq!(ids, 4); // let nl let t
    }

    #[test]
    fn line_numbers_and_comments() {
        let lexed = lex("a\n// llp-analyzer: allow(x) -- y\nb\n");
        assert_eq!(lexed.toks[0].line, 1);
        assert_eq!(lexed.toks[1].line, 3);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.starts_with("// llp-analyzer"));
    }

    #[test]
    fn double_colon_is_fused() {
        let lexed = lex("std::time::Instant::now()");
        assert!(matches_seq(&lexed.toks, 4, &["Instant", "::", "now"]));
    }
}
