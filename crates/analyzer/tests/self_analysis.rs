//! Tier-1 gate: the analyzer run over its own workspace must be
//! deny-clean. This is the same invocation CI's `analyze` job makes via
//! `cargo run -p llp_analyzer -- --check`, expressed as a test so the
//! plain `cargo test` tier-1 surface enforces it too.

use llp_analyzer::analyze_workspace;
use llp_analyzer::report::AnalyzerReport;
use serde::Serialize;
use std::path::Path;

#[test]
fn workspace_is_deny_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = analyze_workspace(&root).expect("workspace discovery");
    let denies: Vec<_> = a.report.findings.iter().filter(|f| f.is_deny()).collect();
    assert!(
        denies.is_empty(),
        "deny-tier findings in the workspace:\n{}",
        denies
            .iter()
            .map(|f| format!("  {}:{}: {}: {}", f.path, f.line, f.lint, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity on the discovery surface itself: the whole workspace is in
    // view (20 crates + facade), not an accidentally-pruned subtree.
    assert!(
        a.report.files_scanned >= 125,
        "only {} files scanned — discovery lost crates",
        a.report.files_scanned
    );
}

#[test]
fn workspace_report_round_trips_as_its_own_baseline() {
    // The PR-gate invariant: `--check --baseline` against a baseline
    // written by the identical run must report zero new findings —
    // fingerprints are a pure function of (lint, path, message,
    // occurrence), never of line numbers or ordering.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = analyze_workspace(&root).expect("workspace discovery");
    let base =
        AnalyzerReport::load_baseline(&a.report.to_json()).expect("own report loads as a baseline");
    let fresh = a.report.new_versus(&base);
    assert!(
        fresh.is_empty(),
        "self-diff must be empty, got {} new finding(s): {:?}",
        fresh.len(),
        fresh
    );
}
