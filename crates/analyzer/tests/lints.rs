//! Fixture-driven lint tests: every lint has at least one firing snippet
//! and one clean twin under `tests/fixtures/`. The fixtures are lexed,
//! never compiled — `policy::discover` skips `fixtures/` directories, so
//! the deliberately-dirty snippets cannot fail the workspace
//! self-analysis in `self_analysis.rs`.

use llp_analyzer::policy::{Class, CrateSpec, SourceFile};
use llp_analyzer::report::AnalyzerReport;
use llp_analyzer::{analyze_crates, Analysis};
use serde::Serialize;

fn run(class: Class, key: &str, path: &str, src: &str, is_root: bool) -> Analysis {
    analyze_crates(&[CrateSpec {
        key: key.to_string(),
        class,
        files: vec![SourceFile {
            path: path.to_string(),
            text: src.to_string(),
        }],
        root_files: if is_root {
            vec![path.to_string()]
        } else {
            vec![]
        },
    }])
}

/// Multi-file variant of [`run`]: the interprocedural lints need
/// callers and callees in separate files of one crate.
fn run_files(class: Class, key: &str, files: &[(&str, &str)]) -> Analysis {
    analyze_crates(&[CrateSpec {
        key: key.to_string(),
        class,
        files: files
            .iter()
            .map(|(path, text)| SourceFile {
                path: (*path).to_string(),
                text: (*text).to_string(),
            })
            .collect(),
        root_files: vec![],
    }])
}

fn lints(a: &Analysis) -> Vec<&str> {
    a.report.findings.iter().map(|f| f.lint.as_str()).collect()
}

/// Shorthand: one non-root file in a deterministic crate.
fn det(src: &str) -> Analysis {
    run(
        Class::Deterministic,
        "core",
        "crates/core/src/x.rs",
        src,
        false,
    )
}

#[test]
fn collections_fire_and_btree_twin_is_clean() {
    let a = det(include_str!("fixtures/collections_firing.rs"));
    assert!(a.report.deny > 0);
    assert!(
        lints(&a)
            .iter()
            .all(|l| *l == "nondeterministic-collections"),
        "{:?}",
        lints(&a)
    );

    let b = det(include_str!("fixtures/collections_clean.rs"));
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn wall_clock_fires_and_duration_twin_is_clean() {
    let a = det(include_str!("fixtures/wall_clock_firing.rs"));
    assert_eq!(lints(&a), vec!["wall-clock"]);

    let b = det(include_str!("fixtures/wall_clock_clean.rs"));
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn wall_clock_fires_in_timing_crates_too() {
    // Timing crates are not exempt — their metering sites must each
    // carry a reasoned allow instead (see suppression tests below).
    let a = run(
        Class::Timing,
        "service",
        "crates/service/src/x.rs",
        include_str!("fixtures/wall_clock_firing.rs"),
        false,
    );
    assert_eq!(lints(&a), vec!["wall-clock"]);
}

#[test]
fn env_read_fires_everywhere_but_the_owner() {
    let src = include_str!("fixtures/env_read_firing.rs");
    let a = det(src);
    assert_eq!(lints(&a), vec!["env-read"]);

    // The documented precedence owner is exempt.
    let owner = run(
        Class::Deterministic,
        "llp_par",
        "vendor/llp_par/src/x.rs",
        src,
        false,
    );
    assert!(
        owner.report.findings.is_empty(),
        "{:?}",
        owner.report.findings
    );

    let b = det(include_str!("fixtures/env_read_clean.rs"));
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn unseeded_rng_fires_and_seeded_twin_is_clean() {
    let a = det(include_str!("fixtures/unseeded_rng_firing.rs"));
    assert!(!a.report.findings.is_empty());
    assert!(
        lints(&a).iter().all(|l| *l == "unseeded-rng"),
        "{:?}",
        lints(&a)
    );

    let b = det(include_str!("fixtures/unseeded_rng_clean.rs"));
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn lock_order_cycle_is_detected() {
    let a = det(include_str!("fixtures/lock_order_cycle.rs"));
    assert!(lints(&a).contains(&"lock-order"), "{:?}", a.report.findings);
    assert!(
        a.report
            .findings
            .iter()
            .any(|f| f.message.contains("cycle")),
        "{:?}",
        a.report.findings
    );

    let b = det(include_str!("fixtures/lock_order_clean.rs"));
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn blocking_call_under_a_guard_is_detected() {
    let a = det(include_str!("fixtures/lock_order_blocking.rs"));
    assert!(lints(&a).contains(&"lock-order"), "{:?}", a.report.findings);
    assert!(
        a.report
            .findings
            .iter()
            .any(|f| f.message.contains("blocking")),
        "{:?}",
        a.report.findings
    );
}

#[test]
fn hot_loop_alloc_denies_in_kernel_files_only() {
    let src = include_str!("fixtures/hot_loop_firing.rs");
    // Under a KERNEL_FILES path: deny-tier findings (the scratch arenas
    // hoisted every historical hit, so new ones fail CI), zero warn.
    let a = run(
        Class::Deterministic,
        "core",
        "crates/core/src/lptype.rs",
        src,
        false,
    );
    assert!(a.report.deny >= 2, "{:?}", a.report.findings);
    assert_eq!(a.report.warn, 0);
    assert!(
        lints(&a).iter().all(|l| *l == "hot-loop-alloc"),
        "{:?}",
        lints(&a)
    );

    // The same source outside the kernel list is not scanned.
    let elsewhere = det(src);
    assert!(
        elsewhere.report.findings.is_empty(),
        "{:?}",
        elsewhere.report.findings
    );

    let b = run(
        Class::Deterministic,
        "core",
        "crates/core/src/lptype.rs",
        include_str!("fixtures/hot_loop_clean.rs"),
        false,
    );
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn crate_roots_must_forbid_unsafe() {
    let a = run(
        Class::Deterministic,
        "core",
        "crates/core/src/lib.rs",
        include_str!("fixtures/forbid_missing.rs"),
        true,
    );
    assert_eq!(lints(&a), vec!["missing-forbid-unsafe"]);

    let b = run(
        Class::Deterministic,
        "core",
        "crates/core/src/lib.rs",
        include_str!("fixtures/forbid_present.rs"),
        true,
    );
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);

    // Non-root files are not subject to the root attribute check.
    let c = det(include_str!("fixtures/forbid_missing.rs"));
    assert!(c.report.findings.is_empty(), "{:?}", c.report.findings);
}

#[test]
fn stale_allow_regresses_to_a_deny_finding() {
    let a = run(
        Class::Timing,
        "service",
        "crates/service/src/x.rs",
        include_str!("fixtures/unused_allow.rs"),
        false,
    );
    assert_eq!(lints(&a), vec!["unused-allow"]);
    assert_eq!(a.report.deny, 1);
}

#[test]
fn live_allow_suppresses_and_is_counted() {
    let a = run(
        Class::Timing,
        "service",
        "crates/service/src/x.rs",
        include_str!("fixtures/suppressed_allow.rs"),
        false,
    );
    assert!(a.report.findings.is_empty(), "{:?}", a.report.findings);
    assert_eq!(a.report.suppressed, 1);
}

#[test]
fn report_round_trips_through_json() {
    // The ANALYZER.json surface: serialize a non-trivial report and read
    // the counts back out of the vendored-serde value tree.
    let a = det(include_str!("fixtures/collections_firing.rs"));
    let json = a.report.to_json();
    let v = serde::json::parse(&json).expect("report JSON parses");
    match v.get("deny") {
        Some(serde::json::Value::Num(n)) => assert_eq!(*n as u64, a.report.deny),
        other => panic!("deny field missing or non-numeric: {other:?}"),
    }
    match v.get("findings") {
        Some(serde::json::Value::Arr(items)) => {
            assert_eq!(items.len(), a.report.findings.len())
        }
        other => panic!("findings field missing or non-array: {other:?}"),
    }
}

#[test]
fn panic_path_fires_under_guard_and_fallible_twin_is_clean() {
    let a = det(include_str!("fixtures/panic_path_firing.rs"));
    assert_eq!(lints(&a), vec!["panic-path"], "{:?}", a.report.findings);
    // The plumbing `.expect("poisoned")` on lock() must not be the
    // origin: the finding is on the `.unwrap()` line.
    assert!(
        a.report.findings[0].message.contains(".unwrap()"),
        "{:?}",
        a.report.findings
    );

    let b = det(include_str!("fixtures/panic_path_clean.rs"));
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn fp_kernel_purity_follows_calls_into_helpers() {
    // The kernel file is clean on its own; the clock read lives in a
    // helper one call away, in another file.
    let kernel = "pub fn violation_scan(x: u64) -> u64 { jitter_scale(x) }\n";
    let a = run_files(
        Class::Deterministic,
        "core",
        &[
            ("crates/core/src/clarkson.rs", kernel),
            (
                "crates/core/src/util.rs",
                include_str!("fixtures/fp_purity_firing.rs"),
            ),
        ],
    );
    // The helper's own wall-clock finding fires per-file; the purity
    // finding fires at the kernel's call site with the witness chain.
    assert!(
        lints(&a).contains(&"fp-kernel-purity"),
        "{:?}",
        a.report.findings
    );
    let purity = a
        .report
        .findings
        .iter()
        .find(|f| f.lint == "fp-kernel-purity")
        .unwrap();
    assert_eq!(purity.path, "crates/core/src/clarkson.rs");
    assert!(
        purity.message.contains("jitter_scale"),
        "{}",
        purity.message
    );

    let b = run_files(
        Class::Deterministic,
        "core",
        &[
            ("crates/core/src/clarkson.rs", kernel),
            (
                "crates/core/src/util.rs",
                include_str!("fixtures/fp_purity_clean.rs"),
            ),
        ],
    );
    assert!(b.report.findings.is_empty(), "{:?}", b.report.findings);
}

#[test]
fn three_deep_cross_file_cycle_is_caught_by_the_full_pipeline() {
    let a = run_files(
        Class::Deterministic,
        "core",
        &[
            (
                "crates/core/src/left.rs",
                include_str!("fixtures/lock_order_deep_left.rs"),
            ),
            (
                "crates/core/src/right.rs",
                include_str!("fixtures/lock_order_deep_right.rs"),
            ),
        ],
    );
    assert!(
        a.report
            .findings
            .iter()
            .any(|f| f.lint == "lock-order" && f.message.contains("cycle")),
        "{:?}",
        a.report.findings
    );
}

#[test]
fn baseline_diff_gates_on_new_findings_only() {
    // Round trip: a report loads back as a baseline and a re-run of the
    // same analysis diffs clean against it.
    let a = det(include_str!("fixtures/collections_firing.rs"));
    let base =
        AnalyzerReport::load_baseline(&a.report.to_json()).expect("fresh report is a baseline");
    assert!(a.report.new_versus(&base).is_empty());

    // A run with different findings reports exactly the delta.
    let b = det(include_str!("fixtures/unseeded_rng_firing.rs"));
    let fresh = b.report.new_versus(&base);
    assert_eq!(fresh.len(), b.report.findings.len());
    assert!(fresh.iter().all(|f| f.lint == "unseeded-rng"), "{fresh:?}");
}
