//! Left arm of a 3-deep interprocedural lock-order cycle: `entry_left`
//! holds `a` and reaches the `b` acquisition only through two
//! intermediate calls — invisible to one-level summary propagation.
use std::sync::Mutex;

struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

fn entry_left(p: &Pair) -> u64 {
    let g = p.a.lock().unwrap();
    step1(p) + *g
}

fn step1(p: &Pair) -> u64 {
    step2(p)
}

fn step2(p: &Pair) -> u64 {
    *p.b.lock().unwrap()
}
