// Fixture: configuration as an explicit argument — no ambient input.
// Mentioning "LLP_THREADS" in a string (as help text does) is inert.
fn threads(requested: Option<usize>) -> usize {
    let _help = "set LLP_THREADS via llp_par, not std::env::var";
    requested.unwrap_or(1)
}
