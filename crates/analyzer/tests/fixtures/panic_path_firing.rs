//! Firing: `.unwrap()` on a non-guard value while the state guard is
//! held — a panic here poisons the mutex for every other thread. The
//! `.expect(…)` chained onto `lock()` itself is poison plumbing and
//! must NOT fire.
use std::sync::Mutex;

struct Counters {
    state: Mutex<u64>,
}

fn bump_first(c: &Counters, samples: &[u64]) -> u64 {
    let mut g = c.state.lock().expect("poisoned");
    let first = samples.first().unwrap();
    *g += first;
    *g
}
