// Fixture: the same two mutexes, but every path honors alpha-before-beta
// and nothing blocking runs under a guard — clean.
use std::sync::Mutex;

struct Shared {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

fn forward(s: &Shared) {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    drop(b);
    drop(a);
}

fn also_forward(s: &Shared) {
    {
        let a = s.alpha.lock().unwrap();
        let b = s.beta.lock().unwrap();
        drop(b);
        drop(a);
    }
    let a2 = s.alpha.lock().unwrap();
    drop(a2);
}
