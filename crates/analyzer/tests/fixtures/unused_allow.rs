// Fixture: a stale suppression — nothing fires on the covered line, so
// the allow itself becomes a deny-tier unused-allow finding.
// llp-analyzer: allow(wall-clock) -- this used to meter a solve here
fn nothing_to_suppress() -> u32 {
    7
}
