// Fixture: ambient configuration outside vendor/llp_par → env-read.
fn threads() -> usize {
    std::env::var("LLP_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}
