//! Clean twin of `fp_purity_firing.rs`: the same helper shape with a
//! deterministic mix instead of a clock read.
pub fn jitter_scale(x: u64) -> u64 {
    x.wrapping_mul(0x9E37_79B9)
}
