//! Right arm of the 3-deep cycle: acquires `b` then `a` directly, the
//! opposite order of `lock_order_deep_left.rs`'s transitive chain.
fn entry_right(p: &Pair) -> u64 {
    let g = p.b.lock().unwrap();
    let h = p.a.lock().unwrap();
    *g + *h
}
