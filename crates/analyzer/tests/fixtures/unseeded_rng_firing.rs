// Fixture: entropy-seeded RNG construction → unseeded-rng.
use rand::rngs::ThreadRng;

fn jitter() -> u64 {
    let mut rng = ThreadRng::default();
    rng.next_u64()
}
