// Fixture: a channel send while holding a guard → lock-order
// (blocking call under a lock).
use std::sync::mpsc::Sender;
use std::sync::Mutex;

struct Shared {
    state: Mutex<u64>,
}

fn publish(s: &Shared, tx: &Sender<u64>) {
    let g = s.state.lock().unwrap();
    tx.send(*g).unwrap();
}
