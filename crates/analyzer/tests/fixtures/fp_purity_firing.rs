//! Firing helper for fp-kernel-purity: a function the FP kernel calls
//! that reads the wall clock. The kernel file itself stays clean — the
//! impurity is only visible through the call graph.
pub fn jitter_scale(x: u64) -> u64 {
    let t = std::time::Instant::now();
    x.wrapping_add(u64::from(t.elapsed().subsec_nanos()))
}
