// Fixture: every RNG flows from an explicit seed argument.
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stream(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}
