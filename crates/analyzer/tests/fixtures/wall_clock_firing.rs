// Fixture: a clock read → wall-clock. The import alone is inert.
use std::time::Instant;

fn measure() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
