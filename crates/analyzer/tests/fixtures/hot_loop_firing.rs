// Fixture: per-iteration allocations in a kernel loop body →
// hot-loop-alloc (warn tier). Scanned under a KERNEL_FILES path.
fn violation_scan(rows: &[Vec<f64>], x: &[f64]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let local = row.to_vec();
        let dots: Vec<f64> = local.iter().zip(x).map(|(a, b)| a * b).collect();
        if dots.iter().sum::<f64>() < 0.0 {
            out.push(i);
        }
    }
    out
}
