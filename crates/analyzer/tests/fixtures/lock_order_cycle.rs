// Fixture: two mutexes acquired in opposite orders in two call paths —
// the classic AB/BA deadlock shape → lock-order (cycle).
use std::sync::Mutex;

struct Shared {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

fn forward(s: &Shared) {
    let a = s.alpha.lock().unwrap();
    let b = s.beta.lock().unwrap();
    drop(b);
    drop(a);
}

fn backward(s: &Shared) {
    let b = s.beta.lock().unwrap();
    let a = s.alpha.lock().unwrap();
    drop(a);
    drop(b);
}
