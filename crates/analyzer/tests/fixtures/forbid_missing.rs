//! Fixture: a crate root without `#![forbid(unsafe_code)]` →
//! missing-forbid-unsafe. The doc comment mentioning the attribute
//! must not satisfy the token-shaped check.

pub fn answer() -> u32 {
    42
}
