// Fixture: a live, reasoned suppression — the wall-clock finding on the
// covered line is swallowed and counted as suppressed, not surfaced.
use std::time::Instant;

fn meter() -> u128 {
    // llp-analyzer: allow(wall-clock) -- metering is this fixture's purpose
    let start = Instant::now();
    start.elapsed().as_nanos()
}
