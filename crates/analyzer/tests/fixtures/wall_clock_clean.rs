// Fixture: Duration arithmetic and type imports never read the clock.
use std::time::{Duration, Instant};

fn budget(iters: u64) -> Duration {
    Duration::from_millis(iters) + Duration::from_micros(250)
}

fn later(t: Instant, by: Duration) -> Instant {
    t + by
}
