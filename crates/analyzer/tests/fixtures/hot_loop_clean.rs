// Fixture: the hoisted twin — one scratch buffer reused across
// iterations; the loop body only borrows.
fn violation_scan(rows: &[Vec<f64>], x: &[f64]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut dot: f64 = 0.0;
    for (i, row) in rows.iter().enumerate() {
        dot = 0.0;
        for (a, b) in row.iter().zip(x) {
            dot += a * b;
        }
        if dot < 0.0 {
            out.push(i);
        }
    }
    out
}
