//! Clean twin of `panic_path_firing.rs`: the fallible lookup is
//! propagated with `?` instead of unwrapped, so no panic-capable site
//! is reachable while the guard is held.
use std::sync::Mutex;

struct Counters {
    state: Mutex<u64>,
}

fn bump_first(c: &Counters, samples: &[u64]) -> Option<u64> {
    let mut g = c.state.lock().expect("poisoned");
    let first = samples.first()?;
    *g += first;
    Some(*g)
}
